"""Command-line interface: ``python -m repro <scenario> [options]``.

Every subcommand is generated from the scenario registry
(:data:`repro.scenarios.REGISTRY`) — the one-command paths behind every
number in EXPERIMENTS.md.  Besides one subcommand per registered
scenario there are two meta commands::

    list       catalogue of registered scenarios and their parameters
    sweep      parameter-grid x seed-replication sweeps, optionally in
               parallel worker processes (see ``repro sweep --help``)
    matrix     ranked supply-policy x workload x cluster-shape
               comparison via the sweep executor (``repro matrix``)
    bench      kernel + scenario throughput benchmarks with schema'd
               ``BENCH_<name>.json`` artifacts and a baseline-compare
               regression gate (see ``repro bench --help``)
    run        run a declarative YAML/JSON config: either a registered
               scenario with overrides, or an arbitrary composed stack
               (cluster x supply x workload x probes) with no Python
               module at all — see ``repro.api`` and examples/configs/
    compose    catalogue of the composable-stack components the config
               path can assemble (``repro compose --list``)

Single runs print the scenario's rendered table/figure data (identical
to the historical per-experiment output) and can persist their flat
metrics with ``--json``/``--csv``.  Sweeps print a deterministic JSON
aggregate (per-cell mean/stdev/CI across seeds) on stdout.

Examples::

    repro day --model var --hours 6
    repro list
    repro sweep day --grid model=fib,var nodes=150,300 --seeds 8 -j 8
    repro sweep fig3 --seeds 16 -j 4 --csv fig3.csv
    repro bench --preset smoke
    repro bench kernel --preset quick --repeats 5 --write-baseline BENCH_baseline.json
    repro bench --preset smoke --against BENCH_baseline.json --max-regression 10%
    repro run --config examples/configs/fib_loadbalancer.yaml
    repro run --config scenario.yaml --json out.json
    repro compose --list
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Any, Dict, List, Optional

from repro.scenarios import (
    REGISTRY,
    SCALE_NAMES,
    Scenario,
    SweepExecutor,
    SweepSpec,
    load_builtin,
)

#: argparse dests that are CLI plumbing, not scenario parameters
_CONTROL_DESTS = ("command", "scale", "json_path", "csv_path", "no_store")


def _flag(name: str) -> str:
    return "--" + name.replace("_", "-")


def _add_no_store(parser) -> None:
    parser.add_argument(
        "--no-store", action="store_true", dest="no_store",
        help="do not record this run into the results warehouse "
             "(equivalent to REPRO_WAREHOUSE=0)",
    )


def _describe_seed(scenario: Scenario) -> str:
    if callable(scenario.seed):
        return scenario.seed_help or "scenario-derived default"
    return str(scenario.seed)


def _add_scenario_parser(sub, scenario: Scenario) -> None:
    parser = sub.add_parser(scenario.name, help=scenario.help)
    for param in scenario.params:
        kwargs: Dict[str, Any] = {
            "default": argparse.SUPPRESS,
            "help": f"{param.help or param.name} (default: {param.default})",
        }
        if param.type is bool:
            kwargs["action"] = "store_true"
        else:
            kwargs["type"] = param.type
            if param.choices is not None:
                kwargs["choices"] = param.choices
        parser.add_argument(_flag(param.name), **kwargs)
    parser.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS,
        help=f"root seed (default: {_describe_seed(scenario)})",
    )
    parser.add_argument(
        "--scale", choices=SCALE_NAMES, default="full",
        help="scale preset for parameter defaults (default: full — the paper)",
    )
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        help="also write run metrics as JSON")
    parser.add_argument("--csv", dest="csv_path", metavar="PATH",
                        help="also write run metrics as CSV")
    _add_no_store(parser)


def _add_sweep_parser(sub) -> None:
    parser = sub.add_parser(
        "sweep", help="grid x seed sweep over one scenario",
        description="Expand a parameter grid times a seed-replication "
                    "count, run every cell (in parallel with -j), and "
                    "print the aggregated metrics as JSON.",
    )
    parser.add_argument("scenario", help="registered scenario to sweep")
    parser.add_argument(
        "--grid", nargs="*", default=[], metavar="PARAM=V1,V2",
        help="parameters to sweep, e.g. model=fib,var nodes=150,300",
    )
    parser.add_argument(
        "--set", nargs="*", default=[], metavar="PARAM=VALUE", dest="fixed",
        help="fixed overrides applied to every cell, e.g. no-load=true",
    )
    parser.add_argument("--seeds", type=int, default=1,
                        help="seed replications per grid cell")
    parser.add_argument("--base-seed", type=int, default=None,
                        help="entropy root for per-run seed derivation "
                             "(default: the scenario's default seed)")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    parser.add_argument("--scale", choices=SCALE_NAMES, default="quick",
                        help="scale preset (default: quick)")
    parser.add_argument("--table", action="store_true",
                        help="print a human-readable table instead of JSON")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        help="also write the JSON aggregate to PATH")
    parser.add_argument("--csv", dest="csv_path", metavar="PATH",
                        help="also write a per-metric CSV to PATH")
    _add_no_store(parser)


def _add_bench_parser(sub) -> None:
    parser = sub.add_parser(
        "bench", help="kernel + scenario throughput benchmarks",
        description="Run the pure-kernel microbenchmark and/or registered "
                    "scenarios under the kernel probe, write one "
                    "BENCH_<name>.json per benchmark, and optionally gate "
                    "against a committed baseline.",
    )
    parser.add_argument(
        "names", nargs="*", metavar="NAME",
        help="benchmarks to run: 'kernel' and/or scenario names "
             "(default: kernel + every registered scenario)",
    )
    parser.add_argument("--preset", choices=SCALE_NAMES, default="quick",
                        help="scale preset (default: quick)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="repeats per benchmark; the median-throughput repeat is recorded")
    parser.add_argument("--out-dir", default=".", metavar="DIR",
                        help="directory for BENCH_<name>.json artifacts")
    parser.add_argument("--against", metavar="PATH",
                        help="baseline file to compare events/sec against")
    parser.add_argument("--max-regression", default="10%", metavar="PCT",
                        help="tolerated events/sec drop vs baseline "
                             "(default: 10%%)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="also write all records as a combined baseline")
    parser.add_argument("--profile", nargs="?", const=25, type=int,
                        metavar="N",
                        help="instead of recording, run each named benchmark "
                             "under cProfile and print the top-N functions "
                             "by internal time (default N: 25)")
    _add_no_store(parser)


def _add_matrix_parser(sub) -> None:
    parser = sub.add_parser(
        "matrix", help="ranked supply-policy x workload comparison",
        description="Sweep supply policies x workloads x cluster shapes "
                    "in parallel via the sweep executor and print a "
                    "ranked comparison (harvest, batch slowdown, "
                    "cold-start rate, pilot churn).  A front door over "
                    "the registered 'supply_matrix' scenario.",
    )
    parser.add_argument("--policies", metavar="P1,P2,...",
                        default=argparse.SUPPRESS,
                        help="supply policies to compare "
                             "(default: every registered policy)")
    parser.add_argument("--workloads", metavar="W1,W2,...",
                        default=argparse.SUPPRESS,
                        help="FaaS workloads to drive (default: gatling,sebs)")
    parser.add_argument("--shapes", metavar="N1,N2,...",
                        default=argparse.SUPPRESS,
                        help="cluster sizes to sweep (default: per scale)")
    parser.add_argument("--hours", type=float, default=argparse.SUPPRESS,
                        help="per-cell experiment length in hours")
    parser.add_argument("--qps", type=float, default=argparse.SUPPRESS,
                        help="per-cell load-client request rate")
    parser.add_argument("--seeds", type=int, default=argparse.SUPPRESS,
                        help="seed replications per cell (default: 1)")
    parser.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                        help="entropy root for per-run seed derivation")
    parser.add_argument("-j", "--jobs", type=int, default=4,
                        help="worker processes for the sweep (default: 4)")
    parser.add_argument("--scale", choices=SCALE_NAMES, default="quick",
                        help="scale preset (default: quick)")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        help="also write the ranked matrix as JSON")
    parser.add_argument("--csv", dest="csv_path", metavar="PATH",
                        help="also write the ranked matrix as CSV")
    _add_no_store(parser)


def _add_run_parser(sub) -> None:
    parser = sub.add_parser(
        "run", help="run a declarative YAML/JSON config",
        description="Run a config file: scenario mode ({scenario, scale, "
                    "seed, overrides}) runs a registered scenario exactly "
                    "like its subcommand; stack mode ({name, seed, horizon, "
                    "stack: {cluster, supply, middleware, workloads, "
                    "probes}}) composes an arbitrary simulation from the "
                    "component registry with no new Python code.",
    )
    parser.add_argument("--config", required=True, metavar="PATH",
                        help="YAML (or JSON) config file")
    parser.add_argument("--clusters", type=int, default=None, metavar="N",
                        help="stack-mode convenience: replicate the config's "
                             "base cluster into an N-member federation "
                             "(members get derived cluster ids and "
                             "independent random substreams)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="stack-mode: run the federation sharded, one "
                             "kernel process per member (N must equal the "
                             "member count; a single-cluster config is "
                             "first replicated into N members, like "
                             "--clusters N)")
    parser.add_argument("--sync-window", type=float, default=60.0,
                        metavar="SECONDS",
                        help="sharded runs: conservative synchronization "
                             "window in simulated seconds (default: 60)")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        help="also write run metrics as JSON")
    _add_no_store(parser)


def _add_serve_parser(sub) -> None:
    parser = sub.add_parser(
        "serve", help="serve a stack's control plane over HTTP (live mode)",
        description="Run a stack-mode config as a live wall-clock service: "
                    "the same cluster/supply/middleware objects a simulated "
                    "run builds, paced against real time and fronted by a "
                    "stdlib HTTP server (POST /invoke/<function>, GET "
                    "/healthz, GET /stats, POST /shutdown).  Workload "
                    "sections are not attached — they describe the replay "
                    "traffic (`repro replay`), but their function catalogue "
                    "is deployed at startup.",
    )
    parser.add_argument("--config", required=True, metavar="PATH",
                        help="stack-mode YAML (or JSON) config file")
    parser.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8380, metavar="PORT",
                        help="listen port; 0 picks an ephemeral port "
                             "(default: 8380)")
    parser.add_argument("--speed", type=float, default=1.0, metavar="X",
                        help="kernel seconds per wall second (default: 1 = "
                             "real time; 60 runs a simulated minute per "
                             "second)")


def _add_replay_parser(sub) -> None:
    parser = sub.add_parser(
        "replay", help="replay a seeded workload against a live server",
        description="Rebuild the config's faas-stream workload from its "
                    "seed and replay it over HTTP — against --url (an "
                    "already-running `repro serve`) or an in-process "
                    "loopback server spun up from the same config.  Emits a "
                    "StreamReport-compatible summary (stream_* metrics "
                    "comparable with the simulated run) and records it in "
                    "the results warehouse as run kind 'live'.",
    )
    parser.add_argument("--config", required=True, metavar="PATH",
                        help="stack-mode YAML (or JSON) config file with a "
                             "faas-stream workload")
    parser.add_argument("--url", default=None, metavar="URL",
                        help="target server (default: serve the config "
                             "in-process on a loopback port)")
    parser.add_argument("--speed", type=float, default=1.0, metavar="X",
                        help="replay pace in kernel seconds per wall second "
                             "(match the server's --speed)")
    parser.add_argument("--horizon", type=float, default=None,
                        metavar="SECONDS",
                        help="kernel-time horizon to replay (default: the "
                             "workload's horizon, else the stack's)")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        help="also write the replay summary as JSON")
    _add_no_store(parser)


def _add_query_parser(sub) -> None:
    parser = sub.add_parser(
        "query", help="SQL + canned queries over the results warehouse",
        description="Query the results warehouse (every scenario / sweep / "
                    "matrix / bench / stack run recorded by default under "
                    ".repro/warehouse.sqlite).  SQL is the front door — "
                    "tables: runs, metrics, artifacts — plus canned "
                    "queries: ranking (mean metric per grouping param), "
                    "trend (per-revision means), regressions (latest runs "
                    "vs their baseline, exits 1 on a regression), drift "
                    "(same spec/seed, different metrics).",
    )
    parser.add_argument(
        "sql", metavar="SQL|CANNED",
        help="a SELECT statement, or one of: ranking, trend, regressions, "
             "drift",
    )
    parser.add_argument("--db", metavar="PATH", default=None,
                        help="warehouse path (default: $REPRO_WAREHOUSE or "
                             ".repro/warehouse.sqlite)")
    parser.add_argument("--format", choices=("table", "json", "csv"),
                        default="table", help="stdout format (default: table)")
    parser.add_argument("--metric", default=None,
                        help="canned queries: metric name (ranking/trend "
                             "default: coverage; regressions: events_per_sec)")
    parser.add_argument("--name", default=None,
                        help="trend: restrict to one run name")
    parser.add_argument("--group", default=None,
                        help="ranking: grouping parameter (default: policy)")
    parser.add_argument("--kind", default=None,
                        help="canned queries: run kind filter")
    parser.add_argument("--baseline-label", default="baseline",
                        help="regressions: label of the baseline runs "
                             "(default: baseline)")
    parser.add_argument("--current-label", default=None,
                        help="regressions: restrict current runs to a label")
    parser.add_argument("--max-regression", default="10%", metavar="PCT",
                        help="regressions: tolerated events/sec drop "
                             "(default: 10%%)")
    parser.add_argument("--limit", type=int, default=None,
                        help="ranking: keep only the top N rows")
    parser.add_argument("--backfill", action="store_true",
                        help="first ingest the committed BENCH_baseline.json "
                             "+ tests/golden/*.json (idempotent)")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        help="also write the result as JSON")
    parser.add_argument("--csv", dest="csv_path", metavar="PATH",
                        help="also write the result as CSV")


def _add_report_parser(sub) -> None:
    parser = sub.add_parser(
        "report", help="per-metric trend/regression summary between revisions",
        description="Compare every (run, metric) mean between two sets of "
                    "recorded runs — two git revisions (--from-rev/--to-rev, "
                    "default: earliest vs latest recorded), or the runs "
                    "before vs after a timestamp (--split).  Flags metrics "
                    "whose mean moved beyond the threshold.",
    )
    parser.add_argument("--db", metavar="PATH", default=None,
                        help="warehouse path (default: $REPRO_WAREHOUSE or "
                             ".repro/warehouse.sqlite)")
    parser.add_argument("--metric", default=None,
                        help="restrict to one metric name")
    parser.add_argument("--name", default=None,
                        help="restrict to one run name")
    parser.add_argument("--kind", default=None,
                        help="restrict to one run kind (scenario, bench, …)")
    parser.add_argument("--from-rev", default=None, metavar="REV",
                        help="baseline git revision (default: earliest "
                             "recorded)")
    parser.add_argument("--to-rev", default=None, metavar="REV",
                        help="comparison git revision (default: latest "
                             "recorded)")
    parser.add_argument("--split", default=None, metavar="TIMESTAMP",
                        help="instead of revisions: compare runs created "
                             "before vs at/after this ISO timestamp")
    parser.add_argument("--threshold", default="10%", metavar="PCT",
                        help="flag metrics whose mean moved more than this "
                             "(default: 10%%)")
    parser.add_argument("--format", choices=("table", "json", "csv"),
                        default="table", help="stdout format (default: table)")


def _add_compose_parser(sub) -> None:
    parser = sub.add_parser(
        "compose", help="composable-stack component catalogue",
        description="Inspect the component registry behind `repro run "
                    "--config` and the repro.api Stack builder.",
    )
    parser.add_argument("--list", action="store_true", dest="list_components",
                        help="list every registered component and its options")


def build_parser() -> argparse.ArgumentParser:
    load_builtin()
    parser = argparse.ArgumentParser(
        prog="repro", description="HPC-Whisk reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for _name, scenario in REGISTRY.items():
        _add_scenario_parser(sub, scenario)
    sub.add_parser("list", help="catalogue of registered scenarios")
    _add_sweep_parser(sub)
    _add_matrix_parser(sub)
    _add_bench_parser(sub)
    _add_run_parser(sub)
    _add_serve_parser(sub)
    _add_replay_parser(sub)
    _add_compose_parser(sub)
    _add_query_parser(sub)
    _add_report_parser(sub)
    return parser


def _render_list() -> str:
    lines = ["registered scenarios (see EXPERIMENTS.md):", ""]
    for name, scenario in REGISTRY.items():
        lines.append(f"{name:<10} {scenario.help}")
        lines.append(f"{'':<10}   seed {_describe_seed(scenario)}"
                     f", workload {scenario.workload or '-'}")
        for param in scenario.params:
            quick = param.scale.get("quick")
            scale_note = f", quick {quick}" if quick is not None else ""
            lines.append(
                f"{'':<10}   {_flag(param.name):<14} "
                f"{param.type.__name__:<6} default {param.default}{scale_note}"
            )
    return "\n".join(lines)


def _parse_assignments(scenario: Scenario, pairs: List[str], multi: bool) -> Dict[str, Any]:
    parsed: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"expected PARAM=VALUE, got {pair!r}")
        name, _eq, raw = pair.partition("=")
        name = name.replace("-", "_")
        param = scenario.param(name)  # raises KeyError for unknown params
        values = [param.coerce(token) for token in raw.split(",")]
        parsed[name] = values if multi else values[-1]
    return parsed


def _persist(args, payload_json: str, payload_csv: str) -> None:
    if getattr(args, "json_path", None):
        with open(args.json_path, "w") as handle:
            handle.write(payload_json + "\n")
    if getattr(args, "csv_path", None):
        with open(args.csv_path, "w") as handle:
            handle.write(payload_csv)


def _run_scenario(args) -> int:
    overrides = {
        key: value for key, value in vars(args).items()
        if key not in _CONTROL_DESTS
    }
    result = REGISTRY.run(args.command, overrides, scale=args.scale)
    print(result.text)
    from repro.analysis.tables import Table

    run = result.to_dict()
    table = Table(
        columns=["scenario", "scale", "seed", "metric", "value"],
        rows=[
            [run["scenario"], run["scale"], run["seed"], name, repr(value)]
            for name, value in run["metrics"].items()
        ],
    )
    _persist(args, result.to_json(), table.to_csv())
    return 0


def _run_bench(args) -> int:
    from repro.bench import (
        bench_names,
        compare_records,
        load_baseline,
        parse_regression,
        profile_bench,
        run_bench,
        write_baseline,
        write_record,
    )

    try:
        threshold = parse_regression(args.max_regression)
        known = bench_names()
        names = list(args.names) or known
        unknown = [name for name in names if name not in known]
        if unknown:
            raise KeyError(f"unknown benchmark(s) {unknown}; known: {known}")
        if args.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if args.profile is not None and args.profile < 1:
            raise ValueError("--profile N must be >= 1")
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"bench: {message}")

    if args.profile is not None:
        for name in names:
            print(f"=== profile: {name} (preset {args.preset}, "
                  f"top {args.profile} by internal time) ===")
            print(profile_bench(name, preset=args.preset, top=args.profile))
        return 0

    from repro.warehouse import capture

    records = {}
    current_ids: Dict[str, str] = {}
    for name in names:
        record = run_bench(name, preset=args.preset, repeats=args.repeats)
        path = write_record(record, args.out_dir)
        run_id = capture.record_bench(record, label="current", artifact=path)
        if run_id is not None:
            current_ids[name] = run_id
        stats = record.stats
        print(
            f"{name:<10} {stats.events_processed:>10} events  "
            f"{stats.wall_time_s:>8.3f}s  {stats.events_per_sec:>12,.0f} ev/s  "
            f"peak queue {stats.peak_queue_depth}  -> {path}"
        )
        records[name] = record

    if args.write_baseline:
        path = write_baseline(list(records.values()), args.write_baseline,
                              preset=args.preset)
        print(f"baseline ({len(records)} entr{'y' if len(records) == 1 else 'ies'}) -> {path}")

    if args.against:
        # the gate is a warehouse query when capture is on (the baseline
        # file is ingested first, so the verdict is provable from the
        # store afterwards); the in-memory comparator is the fallback
        # when the store is disabled or a capture failed — both paths
        # produce identical Comparison values by construction.
        store = capture.default_store() if len(current_ids) == len(records) else None
        try:
            if store is not None:
                from repro.warehouse.queries import bench_gate

                baseline_ids = store.ingest_baseline(args.against)
                comparisons = bench_gate(
                    store, current_ids, baseline_ids, threshold
                )
            else:
                baseline = load_baseline(args.against)
                comparisons = compare_records(records, baseline, threshold)
        except (OSError, ValueError) as error:
            raise SystemExit(f"bench: {error}")
        if not comparisons:
            # an --against gate that compared nothing must not pass green
            print(f"bench: no benchmarks in common with {args.against}; "
                  "the gate compared nothing", file=sys.stderr)
            return 1
        failed = False
        for comparison in comparisons:
            verdict = "REGRESSED" if comparison.regressed else "ok"
            print(
                f"{comparison.name:<10} baseline {comparison.baseline_eps:>12,.0f} ev/s  "
                f"now {comparison.current_eps:>12,.0f} ev/s  "
                f"{comparison.delta:+.1%}  {verdict}"
            )
            failed = failed or comparison.regressed
        if failed:
            print(
                f"bench: events/sec regression beyond "
                f"{threshold:.0%} vs {args.against}",
                file=sys.stderr,
            )
            return 1
    return 0


def _run_matrix(args) -> int:
    from repro.experiments.supply import parse_matrix_lists

    overrides = {
        key: value for key, value in vars(args).items()
        if key not in _CONTROL_DESTS and key != "jobs"
    }
    overrides["jobs"] = args.jobs
    try:
        spec = REGISTRY.build_spec("supply_matrix", overrides, scale=args.scale)
        parse_matrix_lists(spec.params)  # validate names before running
        if int(spec.params["seeds"]) < 1:
            raise ValueError("seeds must be >= 1")
    except (KeyError, ValueError) as error:
        # usage errors only — crashes inside matrix cells propagate
        message = error.args[0] if error.args else error
        raise SystemExit(f"matrix: {message}")
    result = REGISTRY.run_spec(spec)
    print(result.text)
    matrix = result.artifacts["matrix"]
    _persist(args, matrix.to_json(), matrix.to_csv())
    return 0


def _replicate_clusters(stack, count: int):
    """``--clusters N``: the base cluster spec, N times, with derived ids.

    Each member gets ``<base id or 'c'><index>`` as its cluster id; the
    deploy layer derives independent per-member random substreams from
    those ids, so replicas are statistically distinct but the whole
    federation stays reproducible from the one stack seed.
    """
    import dataclasses

    from repro.api import ClusterSpec

    if count < 1:
        raise ValueError("--clusters must be >= 1")
    if len(stack.clusters) > 1:
        raise ValueError(
            "--clusters replicates a single base cluster; this config "
            f"already declares {len(stack.clusters)} heterogeneous members "
            "in its 'clusters' list — edit the config instead"
        )
    base = stack.member_clusters()[0]
    prefix = base.options.get("cluster_id") or "c"
    members = tuple(
        ClusterSpec(
            base.name, **{**base.options, "cluster_id": f"{prefix}{index}"}
        )
        for index in range(count)
    )
    return dataclasses.replace(stack, clusters=members)


def _run_config(args) -> int:
    from repro.api import config_mode, load_config_file, stack_from_config

    spec = stack = None
    try:
        config = load_config_file(args.config)
        mode = config_mode(config)
        if mode == "scenario":
            if args.clusters is not None:
                raise ValueError(
                    "--clusters applies to stack-mode configs only (a "
                    "scenario config wires its own cluster layout)"
                )
            if args.shards is not None:
                raise ValueError(
                    "--shards applies to stack-mode configs only (a "
                    "scenario config wires its own cluster layout)"
                )
            spec = REGISTRY.spec_from_config(config)
        else:
            stack = stack_from_config(config)
            if args.clusters is not None:
                stack = _replicate_clusters(stack, args.clusters)
                stack.validate()
            if args.shards is not None:
                if args.shards < 1:
                    raise ValueError("--shards must be >= 1")
                if args.clusters is None and len(stack.member_clusters()) == 1:
                    # single-cluster config: --shards N doubles as
                    # --clusters N (the shard boundary is the member
                    # boundary, so members must exist to shard over)
                    stack = _replicate_clusters(stack, args.shards)
                    stack.validate()
    except OSError as error:
        raise SystemExit(f"run: {error}")
    except (KeyError, ValueError, TypeError) as error:
        # usage errors only — resolution/validation happens inside the
        # try; crashes inside scenario/stack code below propagate
        message = error.args[0] if error.args else error
        raise SystemExit(f"run: {message}")
    if spec is not None:
        result = REGISTRY.run_spec(spec)
        print(result.text)  # pre-rendered, identical to the subcommand
    elif args.shards is not None:
        try:
            result = stack.run_sharded(
                shards=args.shards, sync_window=args.sync_window
            )
        except ValueError as error:
            message = error.args[0] if error.args else error
            raise SystemExit(f"run: {message}")
        print(result.render())
    else:
        result = stack.run()
        print(result.render())  # rendered from the merged probe metrics
    if getattr(args, "json_path", None):
        with open(args.json_path, "w") as handle:
            handle.write(result.to_json() + "\n")
    return 0


def _live_stack(command: str, path: str):
    """Load a stack-mode config for the live verbs (usage errors exit)."""
    from repro.api import config_mode, load_config_file, stack_from_config

    try:
        config = load_config_file(path)
        if config_mode(config) != "stack":
            raise ValueError(
                "live mode needs a stack-mode config ({name, seed, horizon, "
                "stack: {...}}); scenario configs wire their own workloads"
            )
        return stack_from_config(config)
    except OSError as error:
        raise SystemExit(f"{command}: {error}")
    except (KeyError, ValueError, TypeError) as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"{command}: {message}")


def _run_serve(args) -> int:
    import asyncio

    from repro.live import LiveControlPlane, LiveServer

    stack = _live_stack("serve", args.config)

    async def serve() -> None:
        try:
            service = LiveControlPlane(stack, speed=args.speed)
        except ValueError as error:
            message = error.args[0] if error.args else error
            raise SystemExit(f"serve: {message}")
        server = LiveServer(service, host=args.host, port=args.port)
        try:
            host, port = await server.start()
        except OSError as error:
            raise SystemExit(f"serve: cannot bind {args.host}:{args.port} ({error})")
        print(
            f"serving stack {stack.name!r} at http://{host}:{port} "
            f"(speed x{args.speed:g}) — POST /invoke/<function>, "
            "GET /healthz, GET /stats, POST /shutdown",
            flush=True,
        )
        try:
            await server.wait_shutdown()
        except asyncio.CancelledError:
            await server.stop(drain=False)
            raise

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def _run_replay(args) -> int:
    from repro.live import replay_config

    stack = _live_stack("replay", args.config)
    try:
        summary = replay_config(
            stack, url=args.url, speed=args.speed, horizon=args.horizon
        )
    except (TimeoutError, ConnectionError, OSError) as error:
        raise SystemExit(f"replay: {error}")
    except ValueError as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"replay: {message}")
    print(summary.render())
    if getattr(args, "json_path", None):
        with open(args.json_path, "w") as handle:
            handle.write(summary.to_json() + "\n")
    return 0


def _format_default(value) -> str:
    """Human-readable component-option default for ``compose --list``.

    Nested values render as their *shape*, not their repr: dataclass
    instances as ``ClassName(...)``, enums as their value, and
    lists/tuples of specs as ``[ElementType]`` — so list-valued options
    like a federation's ``clusters: [ClusterSpec]`` stay one line.
    Small all-scalar dataclasses spell their fields out — a supply
    policy's nested controller gains (``PidGains(kp=…, ki=…, kd=…)``)
    are tuning surface, and hiding them behind ``(...)`` made
    ``compose --list`` useless for exactly the components it should
    document best.  Bigger or nested dataclasses (``SlurmConfig``) keep
    the one-line ``ClassName(...)`` shape.
    """
    import dataclasses
    import enum

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = dataclasses.fields(value)
        values = [getattr(value, f.name) for f in fields]
        if len(fields) <= 6 and all(
            v is None or isinstance(v, (str, int, float, bool)) for v in values
        ):
            rendered = ", ".join(
                f"{f.name}={v!r}" for f, v in zip(fields, values)
            )
            return f"{type(value).__name__}({rendered})"
        return f"{type(value).__name__}(...)"
    if isinstance(value, enum.Enum):
        return repr(value.value)
    if isinstance(value, (list, tuple)):
        if not value:
            return "[]"
        kinds = {type(item).__name__ for item in value}
        if len(kinds) == 1 and not isinstance(value[0], (str, int, float, bool)):
            return f"[{kinds.pop()}]"
        return repr(list(value))
    return repr(value)


def _render_stack_layout() -> List[str]:
    """The top-level stack-section schema, nested fields spelled out."""
    return [
        "stack layout (`stack:` section keys / repro.api.Stack fields):",
        f"  {'cluster':<18} ClusterSpec — the single-cluster form",
        f"  {'clusters':<18} [ClusterSpec] — federation members "
        "(give each a cluster_id)",
        f"  {'supply':<18} SupplySpec — one pilot fleet per member",
        f"  {'middleware':<18} MiddlewareSpec | none",
        f"  {'router':<18} RouterSpec — cross-cluster policy "
        "(federations; omit for flat routing)",
        f"  {'workloads':<18} [WorkloadSpec]",
        f"  {'probes':<18} [ProbeSpec]",
    ]


def _render_compose() -> str:
    from repro.api import COMPONENTS, load_builtin_components
    from repro.api.registry import KINDS

    load_builtin_components()
    lines = [
        "composable stack components (repro.api / `repro run --config`;",
        'see the "Composing scenarios" section of EXPERIMENTS.md):',
        "",
    ]
    lines.extend(_render_stack_layout())
    for kind in KINDS:
        lines.append("")
        lines.append(f"{kind}:")
        for comp in COMPONENTS.items(kind):
            lines.append(f"  {comp.name:<18} {comp.help}")
            for name, default in comp.parameters():
                shown = (
                    "required"
                    if default is inspect.Parameter.empty
                    else f"default {_format_default(default)}"
                )
                lines.append(f"  {'':<18}   {name:<18} {shown}")
    return "\n".join(lines)


def _run_sweep(args) -> int:
    executor = SweepExecutor()
    try:
        scenario = REGISTRY.get(args.scenario)
        grid = _parse_assignments(scenario, args.grid, multi=True)
        fixed = _parse_assignments(scenario, args.fixed, multi=False)
        spec = SweepSpec(
            scenario=scenario.name, grid=grid, fixed=fixed, seeds=args.seeds,
            base_seed=args.base_seed, scale=args.scale, jobs=args.jobs,
        )
        if spec.seeds < 1:
            raise ValueError("seeds must be >= 1")
        executor.plan(spec)  # validate grid/overrides before running
    except (KeyError, ValueError) as error:
        # usage errors only — crashes inside scenario code propagate
        message = error.args[0] if error.args else error
        raise SystemExit(f"sweep: {message}")
    result = executor.run(spec)
    runs = sum(len(cell.runs) for cell in result.cells)
    print(
        f"sweep {scenario.name}: {len(result.cells)} cell(s) x {args.seeds} "
        f"seed(s) = {runs} run(s) in {result.elapsed:.1f}s "
        f"across {len(result.worker_pids)} worker(s)",
        file=sys.stderr,
    )
    if args.table:
        from repro.analysis.report import render_sweep

        print(render_sweep(result))
    else:
        print(result.to_json())
    _persist(args, result.to_json(), result.to_csv())
    return 0


def _emit_table(args, table) -> None:
    """Print a query result in the chosen format; honour --json/--csv."""
    if args.format == "json":
        print(table.to_json())
    elif args.format == "csv":
        print(table.to_csv(), end="")
    else:
        print(table.render())
    if getattr(args, "json_path", None) or getattr(args, "csv_path", None):
        _persist(args, table.to_json(), table.to_csv())


def _open_store(db: Optional[str], backfill: bool = False):
    """The warehouse behind ``repro query``/``repro report``."""
    import os

    from repro.warehouse import capture
    from repro.warehouse.store import RunStore

    path = db or capture.store_path() or capture.DEFAULT_PATH
    if not os.path.exists(path) and not backfill:
        raise SystemExit(
            f"query: no warehouse at {path} — run any scenario/bench/matrix "
            "first (capture is on by default), point --db at a store, or "
            "pass --backfill to seed one from the committed artifacts"
        )
    store = RunStore(path)
    if backfill:
        counts = store.backfill(".")
        print(
            f"backfill: {counts['baseline']} baseline entr"
            f"{'y' if counts['baseline'] == 1 else 'ies'}, "
            f"{counts['golden']} golden trace(s) -> {path}",
            file=sys.stderr,
        )
    return store


def _run_query(args) -> int:
    import sqlite3

    from repro.bench.harness import parse_regression
    from repro.warehouse import queries

    token = args.sql.strip()
    try:
        store = _open_store(args.db, backfill=args.backfill)
        if token in queries.CANNED:
            options: Dict[str, Any] = {}
            if token == "ranking":
                options["metric"] = args.metric or "coverage"
                options["group"] = args.group or "policy"
                options["kind"] = args.kind or "scenario"
                if args.limit is not None:
                    options["limit"] = args.limit
            elif token == "trend":
                options["metric"] = args.metric or "coverage"
                options["name"] = args.name
                options["kind"] = args.kind
            elif token == "regressions":
                options["threshold"] = parse_regression(args.max_regression)
                options["metric"] = args.metric or "events_per_sec"
                options["kind"] = args.kind or "bench"
                options["baseline_label"] = args.baseline_label
                options["current_label"] = args.current_label
            table = queries.run_canned(store, token, **options)
        else:
            table = store.query(token)
    except sqlite3.Error as error:
        raise SystemExit(f"query: {error}")
    except ValueError as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"query: {message}")
    _emit_table(args, table)
    if token == "regressions":
        regressed = [row for row in table.rows if row[-1]]
        if regressed:
            print(
                f"query: {len(regressed)} benchmark(s) regressed vs baseline",
                file=sys.stderr,
            )
            return 1
    return 0


def _run_report(args) -> int:
    import sqlite3

    from repro.bench.harness import parse_regression

    try:
        threshold = parse_regression(args.threshold)
    except ValueError as error:
        raise SystemExit(f"report: {error}")
    if (args.from_rev is None) != (args.to_rev is None):
        raise SystemExit("report: --from-rev and --to-rev go together")
    if args.split is not None and args.from_rev is not None:
        raise SystemExit("report: pick revisions or --split, not both")

    store = _open_store(args.db)
    filters, params = "", {}
    if args.metric is not None:
        filters += " AND m.name = :metric"
        params["metric"] = args.metric
    if args.name is not None:
        filters += " AND r.name = :name"
        params["name"] = args.name
    if args.kind is not None:
        filters += " AND r.kind = :kind"
        params["kind"] = args.kind

    def side_means(condition: str, extra: Dict[str, Any]):
        sql = f"""
            SELECT r.name, m.name AS metric, AVG(m.value) AS mean
            FROM runs r JOIN metrics m ON m.run_id = r.run_id
            WHERE {condition}{filters}
            GROUP BY r.name, m.name
        """
        table = store.query(sql, {**params, **extra})
        return {(row[0], row[1]): row[2] for row in table.rows}

    try:
        if args.split is not None:
            from_label, to_label = f"< {args.split}", f">= {args.split}"
            before = side_means("r.created_at < :split", {"split": args.split})
            after = side_means("r.created_at >= :split", {"split": args.split})
        else:
            from_rev, to_rev = args.from_rev, args.to_rev
            if from_rev is None:
                revs = store.query(
                    "SELECT COALESCE(git_rev, '(none)') AS rev FROM runs "
                    "GROUP BY git_rev ORDER BY MIN(rowid)"
                ).rows
                if len(revs) < 2:
                    print(
                        "report: fewer than two recorded revisions — run "
                        "experiments at another revision first, or compare "
                        "time windows with --split"
                    )
                    return 0
                from_rev, to_rev = str(revs[0][0]), str(revs[-1][0])
            from_label, to_label = from_rev, to_rev
            before = side_means(
                "COALESCE(r.git_rev, '(none)') = :rev", {"rev": from_rev}
            )
            after = side_means(
                "COALESCE(r.git_rev, '(none)') = :rev", {"rev": to_rev}
            )
    except sqlite3.Error as error:
        raise SystemExit(f"report: {error}")

    from repro.analysis.tables import Table

    rows = []
    for key in sorted(set(before) & set(after)):
        base, current = float(before[key]), float(after[key])
        delta = (current / base - 1.0) if base != 0 else 0.0
        flag = "CHANGED" if abs(delta) > threshold else ""
        rows.append([key[0], key[1], base, current, f"{delta:+.1%}", flag])
    table = Table(
        columns=["name", "metric", "from_mean", "to_mean", "delta", "flag"],
        rows=rows,
        title=f"report: {from_label} -> {to_label} "
              f"(threshold {threshold:.0%})",
    )
    _emit_table(args, table)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "no_store", False):
        # set the env (not just process state) so sweep/matrix worker
        # processes inherit the opt-out
        from repro.warehouse import capture

        capture.disable()
    if args.command == "query":
        return _run_query(args)
    if args.command == "report":
        return _run_report(args)
    if args.command == "list":
        print(_render_list())
        return 0
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "matrix":
        return _run_matrix(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "run":
        return _run_config(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "replay":
        return _run_replay(args)
    if args.command == "compose":
        if not args.list_components:
            raise SystemExit(
                "compose: nothing to do; use `repro compose --list` for the "
                "component catalogue"
            )
        print(_render_compose())
        return 0
    return _run_scenario(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
