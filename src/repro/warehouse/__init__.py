"""Results warehouse: one SQLite store over every runner's results.

See :mod:`repro.warehouse.store` for the :class:`RunStore` API,
:mod:`repro.warehouse.queries` for the canned queries behind ``repro
query``, and :mod:`repro.warehouse.capture` for the automatic opt-out
capture every runner goes through.
"""

from repro.warehouse.schema import SCHEMA_VERSION
from repro.warehouse.store import RunRecord, RunStore

__all__ = ["RunRecord", "RunStore", "SCHEMA_VERSION"]
