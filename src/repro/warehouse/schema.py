"""The warehouse's versioned SQLite schema and its migrations.

The store keeps its schema version in SQLite's ``user_version`` pragma.
:func:`migrate` applies every migration whose version exceeds the
database's current one, inside a single transaction per migration, so a
store created by any earlier release upgrades in place the first time a
newer :class:`~repro.warehouse.store.RunStore` opens it.

Schema (version 1)::

    runs       one row per recorded run: identity (run_id, kind, name,
               spec_hash, seed, scale, label), provenance (git_rev,
               created_at, wall_time_s), a metrics_digest for drift
               queries, and the run's canonical JSON payload (resolved
               params, preset, …) for ``json_extract`` queries
    metrics    flat (run_id, name, value) rows — every flat float
               metric a run emitted, ``@member``-suffixed keys included
    artifacts  (run_id, name, path) pointers to on-disk JSON artifacts
               (golden traces, BENCH_*.json, baseline files)
"""

from __future__ import annotations

import sqlite3
from typing import List, Tuple

#: the schema version this code writes and expects
SCHEMA_VERSION = 1

#: ordered (version, statements) pairs; append-only across releases
MIGRATIONS: List[Tuple[int, Tuple[str, ...]]] = [
    (
        1,
        (
            """
            CREATE TABLE runs (
                run_id         TEXT PRIMARY KEY,
                kind           TEXT NOT NULL,
                name           TEXT NOT NULL,
                spec_hash      TEXT,
                seed           INTEGER,
                scale          TEXT,
                label          TEXT,
                git_rev        TEXT,
                created_at     TEXT NOT NULL,
                wall_time_s    REAL,
                metrics_digest TEXT,
                payload        TEXT
            )
            """,
            "CREATE INDEX idx_runs_kind_name ON runs(kind, name)",
            "CREATE INDEX idx_runs_identity ON runs(name, spec_hash, seed, scale)",
            """
            CREATE TABLE metrics (
                run_id TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
                name   TEXT NOT NULL,
                value  REAL,
                PRIMARY KEY (run_id, name)
            )
            """,
            "CREATE INDEX idx_metrics_name ON metrics(name)",
            """
            CREATE TABLE artifacts (
                run_id TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
                name   TEXT NOT NULL,
                path   TEXT NOT NULL,
                PRIMARY KEY (run_id, name)
            )
            """,
        ),
    ),
]


def schema_version(conn: sqlite3.Connection) -> int:
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def migrate(conn: sqlite3.Connection) -> int:
    """Bring *conn* up to :data:`SCHEMA_VERSION`; returns the version.

    Raises :class:`ValueError` when the database was written by a newer
    release than this code — silently reading a future schema could
    return wrong answers, which is worse than failing.
    """
    current = schema_version(conn)
    if current > SCHEMA_VERSION:
        raise ValueError(
            f"warehouse schema version {current} is newer than this "
            f"code's {SCHEMA_VERSION}; upgrade the repro package"
        )
    for version, statements in MIGRATIONS:
        if version <= current:
            continue
        try:
            with conn:  # one transaction per migration step
                for statement in statements:
                    conn.execute(statement)
                conn.execute(f"PRAGMA user_version = {int(version)}")
        except sqlite3.OperationalError:
            # two processes can race to create a fresh store (parallel
            # sweep workers); the loser's DDL fails on the winner's
            # committed tables — fine iff the step really is in place
            if schema_version(conn) < version:
                raise
        current = version
    return current
