"""Automatic, best-effort run capture into the default warehouse.

Every runner (scenario registry, sweep executor, matrix, bench, stack)
calls one of the ``record_*`` functions here after a run completes.
Capture is:

* **opt-out** — enabled by default at ``.repro/warehouse.sqlite``; the
  ``REPRO_WAREHOUSE`` env var disables it (``0``/``off``/``false``/
  ``no``/``none``/empty) or points it at another path, and the CLI's
  ``--no-store`` flag sets the env so sweep worker processes inherit
  the opt-out;
* **best-effort** — a store failure (read-only filesystem, locked
  volume…) warns once and never breaks the run that produced the
  results;
* **lazy** — runners import this module inside the call, so the
  warehouse costs nothing until a run actually finishes.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

ENV_VAR = "REPRO_WAREHOUSE"
DEFAULT_PATH = os.path.join(".repro", "warehouse.sqlite")
_OFF_TOKENS = frozenset({"", "0", "off", "false", "no", "none"})

_store = None
_store_path: Optional[str] = None
_warned = False


def store_path() -> Optional[str]:
    """The capture target, or None when capture is disabled."""
    value = os.environ.get(ENV_VAR)
    if value is None:
        return DEFAULT_PATH
    if value.strip().lower() in _OFF_TOKENS:
        return None
    return value


def enabled() -> bool:
    return store_path() is not None


def disable() -> None:
    """Turn capture off for this process and its children."""
    os.environ[ENV_VAR] = "0"


def default_store():
    """The process-wide store at :func:`store_path` (None if disabled).

    Cached per path, so repeated captures in one process share one
    connection; a fresh store backfills the committed baseline/golden
    artifacts when created inside a repo checkout.
    """
    global _store, _store_path
    path = store_path()
    if path is None:
        return None
    if _store is not None and _store_path == path:
        return _store
    from repro.warehouse.store import RunStore

    if _store is not None:
        _store.close()
    _store = RunStore(path, auto_backfill=True)
    _store_path = path
    return _store


def reset() -> None:
    """Drop the cached store (tests re-point the env between cases)."""
    global _store, _store_path, _warned
    if _store is not None:
        _store.close()
    _store = None
    _store_path = None
    _warned = False


def _capture(method: str, *args, **kwargs) -> Optional[str]:
    global _warned
    try:
        store = default_store()
        if store is None:
            return None
        return getattr(store, method)(*args, **kwargs)
    except Exception as exc:  # capture must never break the run
        if not _warned:
            _warned = True
            warnings.warn(
                f"results warehouse capture failed ({exc}); "
                "set REPRO_WAREHOUSE=0 to silence",
                RuntimeWarning,
                stacklevel=3,
            )
        return None


def record_scenario(result, wall_time_s=None, label=None) -> Optional[str]:
    return _capture("record_scenario", result, wall_time_s=wall_time_s, label=label)


def record_sweep(result) -> Optional[str]:
    return _capture("record_sweep", result)


def record_matrix(result) -> Optional[str]:
    return _capture("record_matrix", result)


def record_bench(record, label=None, artifact=None) -> Optional[str]:
    return _capture("record_bench", record, label=label, artifact=artifact)


def record_stack(report, wall_time_s=None, shards=None) -> Optional[str]:
    return _capture("record_stack", report, wall_time_s=wall_time_s, shards=shards)


def record_live(summary) -> Optional[str]:
    return _capture("record_live", summary)
