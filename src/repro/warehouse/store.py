"""The persistent run store: every runner's results, one SQLite file.

:class:`RunStore` records runs from all five runners — registered
scenarios, sweeps, the policy matrix, benchmarks, and composed stacks
(flat or sharded) — into the versioned schema of
:mod:`repro.warehouse.schema`, and answers SQL over them (``repro
query`` / ``repro report`` and the canned queries of
:mod:`repro.warehouse.queries`).

Design points:

* **Deterministic run ids.**  A run's id is the canonical hash of its
  identity (kind, name, spec hash, seed, scale, label, git rev) plus
  its metrics digest — so ingesting the same results twice is a no-op
  (``INSERT OR IGNORE``), while the same spec producing *different*
  metrics (drift, or a new revision changing results) records a new
  row.  Timestamps are provenance, never identity.
* **Concurrent writers.**  The store runs in WAL mode with a generous
  busy timeout; sweep worker processes write cell runs directly and
  concurrently (see ``tests/test_warehouse/test_capture.py``).
* **Read-only queries.**  Ad-hoc SQL opens a separate ``mode=ro``
  connection, so ``repro query`` can never mutate the store.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro import provenance
from repro.analysis.tables import Table
from repro.warehouse.schema import SCHEMA_VERSION, migrate, schema_version

#: run kinds the store records (free-form, but these are the builtins)
RUN_KINDS = ("scenario", "sweep", "matrix", "bench", "stack", "live")


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclass
class RunRecord:
    """One run, ready to be written into the store."""

    kind: str
    name: str
    metrics: Mapping[str, float] = field(default_factory=dict)
    spec_hash: Optional[str] = None
    seed: Optional[int] = None
    scale: Optional[str] = None
    #: free-form tag partitioning runs ("baseline", "current", "golden")
    label: Optional[str] = None
    git_rev: Optional[str] = None
    created_at: Optional[str] = None
    wall_time_s: Optional[float] = None
    #: canonical JSON-able context (resolved params, preset, grid, …)
    payload: Mapping[str, Any] = field(default_factory=dict)
    #: artifact name -> on-disk path
    artifacts: Mapping[str, str] = field(default_factory=dict)

    def metrics_digest(self) -> str:
        return provenance.spec_hash(
            {name: float(self.metrics[name]) for name in sorted(self.metrics)}
        )

    def run_id(self) -> str:
        """Deterministic identity: same results -> same id, always."""
        return provenance.spec_hash(
            {
                "kind": self.kind,
                "name": self.name,
                "spec_hash": self.spec_hash,
                "seed": self.seed,
                "scale": self.scale,
                "label": self.label,
                "git_rev": self.git_rev,
                "metrics_digest": self.metrics_digest(),
            }
        )


class RunStore:
    """Record, ingest, migrate, and query the results warehouse.

    Recording is idempotent by deterministic run id — the same results
    land once, no matter how many runners report them (examples use a
    real temp file, never ``:memory:``: :meth:`query` reopens the path
    read-only, and an in-memory URI would reopen a *different*, empty
    database)::

        >>> import tempfile
        >>> from pathlib import Path
        >>> path = Path(tempfile.mkdtemp()) / "wh.sqlite"
        >>> with RunStore(path) as store:
        ...     first = store.record(RunRecord(kind="scenario", name="demo",
        ...                                    metrics={"coverage": 0.5}, seed=1))
        ...     again = store.record(RunRecord(kind="scenario", name="demo",
        ...                                    metrics={"coverage": 0.5}, seed=1))
        ...     first == again, store.run_count()
        (True, 1)
    """

    def __init__(self, path: os.PathLike, auto_backfill: bool = False) -> None:
        self.path = str(path)
        fresh = not os.path.exists(self.path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=30.0)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.execute("PRAGMA foreign_keys=ON")
        migrate(self._conn)
        if fresh and auto_backfill:
            # A brand-new store seeds itself from the committed
            # artifacts when run from a checkout, so the very first
            # `repro query` already has a baseline to compare against.
            try:
                self.backfill(os.getcwd())
            except Exception:  # pragma: no cover - best-effort seeding
                pass

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def schema_version(self) -> int:
        return schema_version(self._conn)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, record: RunRecord) -> str:
        """Write one run (idempotent by run id); returns the run id."""
        if record.git_rev is None:
            # resolve the ambient revision BEFORE the id is computed —
            # it is part of the identity, so the same deterministic
            # results at a new revision must be a new row, not an
            # INSERT OR IGNORE no-op
            record = replace(record, git_rev=provenance.git_rev())
        run_id = record.run_id()
        git_rev = record.git_rev
        created_at = record.created_at or _utc_now()
        payload = provenance.canonical_json(record.payload) if record.payload else None
        with self._conn:
            inserted = self._conn.execute(
                "INSERT OR IGNORE INTO runs (run_id, kind, name, spec_hash,"
                " seed, scale, label, git_rev, created_at, wall_time_s,"
                " metrics_digest, payload)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    record.kind,
                    record.name,
                    record.spec_hash,
                    record.seed,
                    record.scale,
                    record.label,
                    git_rev,
                    created_at,
                    record.wall_time_s,
                    record.metrics_digest(),
                    payload,
                ),
            ).rowcount
            if inserted:
                self._conn.executemany(
                    "INSERT OR IGNORE INTO metrics (run_id, name, value)"
                    " VALUES (?, ?, ?)",
                    [
                        (run_id, name, float(record.metrics[name]))
                        for name in sorted(record.metrics)
                    ],
                )
            if record.artifacts:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO artifacts (run_id, name, path)"
                    " VALUES (?, ?, ?)",
                    [
                        (run_id, name, str(path))
                        for name, path in sorted(record.artifacts.items())
                    ],
                )
        return run_id

    def record_scenario(
        self,
        result,
        wall_time_s: Optional[float] = None,
        label: Optional[str] = None,
    ) -> str:
        """Record one :class:`~repro.scenarios.spec.ScenarioResult`."""
        spec = result.spec
        return self.record(
            RunRecord(
                kind="scenario",
                name=spec.name,
                metrics=dict(result.metrics),
                spec_hash=spec.spec_hash(),
                seed=spec.seed,
                scale=spec.scale,
                label=label,
                wall_time_s=wall_time_s,
                payload={
                    "params": {k: spec.params[k] for k in sorted(spec.params)}
                },
            )
        )

    def record_sweep(self, result) -> str:
        """Record one :class:`~repro.scenarios.sweep.SweepResult`.

        Cell aggregates flatten to ``<metric>@<cell_key>`` rows (plain
        ``<metric>`` for the single-cell, no-grid sweep), carrying the
        cross-seed mean — individual replicates are already recorded as
        their own scenario runs by the capture layer.
        """
        from repro.scenarios.sweep import cell_key

        spec = result.spec
        metrics: Dict[str, float] = {}
        for cell in result.cells:
            suffix = f"@{cell_key(cell.params)}" if cell.params else ""
            for name in sorted(cell.metrics):
                metrics[f"{name}{suffix}"] = cell.metrics[name]["mean"]
        return self.record(
            RunRecord(
                kind="sweep",
                name=spec.scenario,
                metrics=metrics,
                spec_hash=spec.spec_hash(),
                seed=result.base_seed,
                scale=spec.scale,
                wall_time_s=result.elapsed,
                payload={
                    "grid": {k: list(v) for k, v in spec.grid.items()},
                    "fixed": dict(spec.fixed),
                    "seeds": spec.seeds,
                },
            )
        )

    def record_matrix(self, result) -> str:
        """Record one :class:`~repro.supply.matrix.MatrixResult`."""
        spec = result.sweep.spec
        return self.record(
            RunRecord(
                kind="matrix",
                name=spec.scenario,
                metrics=result.flat_metrics(),
                spec_hash=spec.spec_hash(),
                seed=result.sweep.base_seed,
                scale=result.scale,
                wall_time_s=result.sweep.elapsed,
                payload={
                    "grid": {k: list(v) for k, v in spec.grid.items()},
                    "fixed": dict(spec.fixed),
                    "seeds": result.seeds,
                },
            )
        )

    def record_bench(
        self,
        record,
        label: Optional[str] = None,
        artifact: Optional[str] = None,
    ) -> str:
        """Record one :class:`~repro.bench.harness.BenchRecord`.

        The kernel counters and the wall-clock throughput become metric
        rows alongside the benchmark's scenario metrics; the preset
        doubles as the run's scale so regression queries can refuse
        cross-preset comparisons exactly like the in-memory comparator.
        """
        stats = record.stats
        metrics: Dict[str, float] = {
            "events_per_sec": float(stats.events_per_sec),
            "events_processed": float(stats.events_processed),
            "events_scheduled": float(stats.events_scheduled),
            "events_reused": float(stats.events_reused),
            "peak_queue_depth": float(stats.peak_queue_depth),
            "wall_time_s": float(stats.wall_time_s),
        }
        for name in sorted(record.metrics):
            metrics.setdefault(name, float(record.metrics[name]))
        return self.record(
            RunRecord(
                kind="bench",
                name=record.name,
                metrics=metrics,
                spec_hash=record.spec_hash,
                seed=record.seed,
                scale=record.preset,
                label=label,
                payload={"preset": record.preset, "bench_kind": record.kind},
                artifacts={"record": artifact} if artifact else {},
            )
        )

    def record_stack(
        self,
        report,
        wall_time_s: Optional[float] = None,
        shards: Optional[int] = None,
    ) -> str:
        """Record one :class:`~repro.api.stack.SimulationReport`."""
        payload: Dict[str, Any] = {"horizon": report.horizon}
        if shards is not None:
            payload["shards"] = int(shards)
        return self.record(
            RunRecord(
                kind="stack",
                name=report.name,
                metrics=dict(report.metrics),
                spec_hash=provenance.spec_hash(
                    {"stack": report.name, "horizon": report.horizon}
                ),
                seed=report.seed,
                label="sharded" if shards is not None else None,
                wall_time_s=wall_time_s,
                payload=payload,
            )
        )

    def record_live(self, summary) -> str:
        """Record one live replay (:class:`~repro.live.replay.ReplaySummary`).

        Live runs share the ``stream_*`` metric names with simulated
        streaming runs, so one SQL query compares the two modes; the
        ``live`` kind plus the target URL in the payload keep the
        provenance unambiguous.
        """
        return self.record(
            RunRecord(
                kind="live",
                name=summary.name,
                metrics=dict(summary.metrics()),
                spec_hash=provenance.spec_hash(
                    {
                        "stack": summary.name,
                        "horizon": summary.horizon,
                        "speed": summary.speed,
                    }
                ),
                seed=summary.seed,
                wall_time_s=summary.wall_time_s,
                payload={
                    "horizon": summary.horizon,
                    "speed": summary.speed,
                    "url": summary.url,
                    "by_status": dict(summary.report.by_status),
                },
            )
        )

    # ------------------------------------------------------------------
    # ingest / backfill
    # ------------------------------------------------------------------
    def ingest_golden(self, path: os.PathLike) -> str:
        """Ingest one committed golden trace (a ScenarioResult JSON)."""
        path = Path(path)
        payload = json.loads(path.read_text())
        params = dict(payload.get("params", {}))
        spec_hash = payload.get("spec_hash") or provenance.spec_hash(
            {
                "scenario": payload["scenario"],
                "params": {k: params[k] for k in sorted(params)},
            }
        )
        return self.record(
            RunRecord(
                kind="scenario",
                name=str(payload["scenario"]),
                metrics=dict(payload.get("metrics", {})),
                spec_hash=spec_hash,
                seed=payload.get("seed"),
                scale=payload.get("scale"),
                label="golden",
                payload={"params": params},
                artifacts={"golden": str(path)},
            )
        )

    def ingest_baseline(
        self, path: os.PathLike, label: str = "baseline"
    ) -> Dict[str, str]:
        """Ingest a bench baseline (or single-record) file.

        Returns ``benchmark name -> run id`` for every entry, in the
        file's entry order — the query-backed regression gate joins
        against exactly these ids.
        """
        from repro.bench.harness import load_baseline

        return {
            name: self.record_bench(record, label=label, artifact=str(path))
            for name, record in load_baseline(str(path)).items()
        }

    def backfill(self, root: os.PathLike = ".") -> Dict[str, int]:
        """Ingest the committed artifacts under a repo checkout.

        ``BENCH_baseline.json`` (label ``baseline``) and every
        ``tests/golden/*.json`` scenario trace (label ``golden``), so a
        fresh store is non-empty from its first run.  Idempotent: run
        ids derive from file contents, so re-backfilling changes
        nothing.
        """
        root = Path(root)
        counts = {"baseline": 0, "golden": 0}
        baseline = root / "BENCH_baseline.json"
        if baseline.is_file():
            counts["baseline"] = len(self.ingest_baseline(baseline))
        golden_dir = root / "tests" / "golden"
        if golden_dir.is_dir():
            for path in sorted(golden_dir.glob("*.json")):
                self.ingest_golden(path)
                counts["golden"] += 1
        return counts

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, sql: str, params: Mapping[str, Any] = ()) -> Table:
        """Run read-only SQL against the store; returns a Table.

        Uses a separate ``mode=ro`` connection so arbitrary SQL (the
        ``repro query`` front door) cannot mutate the warehouse::

            >>> import tempfile
            >>> from pathlib import Path
            >>> path = Path(tempfile.mkdtemp()) / "wh.sqlite"
            >>> with RunStore(path) as store:
            ...     _ = store.record(RunRecord(kind="live", name="loopback",
            ...         metrics={"stream_requests_total": 61.0}))
            ...     store.query("select kind, name from runs").rows
            [['live', 'loopback']]
        """
        uri = f"file:{self.path}?mode=ro"
        conn = sqlite3.connect(uri, uri=True, timeout=30.0)
        try:
            cursor = conn.execute(sql, params)
            return Table.from_cursor(cursor)
        finally:
            conn.close()

    def run_count(self, kind: Optional[str] = None) -> int:
        sql = "SELECT COUNT(*) FROM runs"
        params = ()
        if kind is not None:
            sql += " WHERE kind = ?"
            params = (kind,)
        return int(self._conn.execute(sql, params).fetchone()[0])

    def kinds(self) -> Dict[str, int]:
        """``kind -> recorded run count`` over the whole store."""
        rows = self._conn.execute(
            "SELECT kind, COUNT(*) FROM runs GROUP BY kind ORDER BY kind"
        ).fetchall()
        return {str(kind): int(count) for kind, count in rows}
