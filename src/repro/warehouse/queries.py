"""Canned queries over the results warehouse.

``repro query`` accepts either raw SQL or one of the named queries
here; ``repro bench --against`` and ``repro report`` are thin fronts
over the same functions.  Each canned query takes a
:class:`~repro.warehouse.store.RunStore` plus keyword options and
returns a :class:`~repro.analysis.tables.Table`:

``ranking``
    Rank values of one grouping parameter (default ``policy``) by the
    cross-run average of one metric (default ``coverage``) — "which
    supply policy wins on harvest across everything we've recorded?".
``trend``
    One row per (git revision, run name): a metric's mean at each
    recorded revision, oldest revision first — "when did cold-start
    rate move?".
``regressions``
    The CI bench gate as SQL: latest current run per benchmark joined
    against its ``baseline``-labelled run; delta and verdict computed
    exactly like :func:`repro.bench.harness.compare_records`.
``drift``
    Runs whose identity (name, spec hash, seed, scale) recorded more
    than one distinct metrics digest — determinism drift across
    revisions.

Every canned query is ordinary SQL over the store, so the example
fits in a docstring (stores in examples live on disk, never
``:memory:`` — read-only queries reopen the path)::

    >>> import tempfile
    >>> from pathlib import Path
    >>> from repro.warehouse.store import RunRecord, RunStore
    >>> path = Path(tempfile.mkdtemp()) / "wh.sqlite"
    >>> store = RunStore(path)
    >>> for policy, cov in [("fib", 0.61), ("var", 0.83)]:
    ...     _ = store.record(RunRecord(kind="scenario", name="idleness",
    ...         metrics={"coverage": cov}, seed=1,
    ...         payload={"params": {"policy": policy}}))
    >>> [row[0] for row in ranking(store, "coverage", "policy").rows]
    ['var', 'fib']
    >>> store.close()
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.analysis.tables import Table

_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


def _check_identifier(token: str, what: str) -> str:
    if not _IDENTIFIER.match(token or ""):
        raise ValueError(f"{what} must be an identifier, got {token!r}")
    return token


def ranking(
    store,
    metric: str = "coverage",
    group: str = "policy",
    kind: str = "scenario",
    limit: Optional[int] = None,
) -> Table:
    """Cross-run average of *metric* per value of the *group* param."""
    _check_identifier(group, "group")
    sql = f"""
        SELECT json_extract(r.payload, '$.params.{group}') AS {group},
               COUNT(*) AS runs,
               AVG(m.value) AS mean,
               MIN(m.value) AS min,
               MAX(m.value) AS max
        FROM runs r
        JOIN metrics m ON m.run_id = r.run_id
        WHERE r.kind = :kind
          AND m.name = :metric
          AND json_extract(r.payload, '$.params.{group}') IS NOT NULL
        GROUP BY 1
        ORDER BY mean DESC, 1
    """
    params: Dict[str, Any] = {"kind": kind, "metric": metric}
    if limit is not None:
        sql += " LIMIT :limit"
        params["limit"] = int(limit)
    table = store.query(sql, params)
    table.title = f"ranking: mean {metric} by {group} over {kind} runs"
    return table


def trend(
    store,
    metric: str = "coverage",
    name: Optional[str] = None,
    kind: Optional[str] = None,
) -> Table:
    """A metric's per-revision mean, oldest recorded revision first."""
    sql = """
        SELECT COALESCE(r.git_rev, '(none)') AS git_rev,
               r.name,
               COUNT(*) AS runs,
               AVG(m.value) AS mean,
               MIN(r.created_at) AS first_seen
        FROM runs r
        JOIN metrics m ON m.run_id = r.run_id
        WHERE m.name = :metric
    """
    params: Dict[str, Any] = {"metric": metric}
    if name is not None:
        sql += " AND r.name = :name"
        params["name"] = name
    if kind is not None:
        sql += " AND r.kind = :kind"
        params["kind"] = kind
    sql += """
        GROUP BY r.git_rev, r.name
        ORDER BY first_seen, git_rev, r.name
    """
    table = store.query(sql, params)
    table.title = f"trend: mean {metric} per git revision"
    return table


#: the SQL core of the regression gate: one row per benchmark present
#: on both sides, with delta/verdict computed exactly like
#: ``compare_records`` (delta = cur/base - 1 when base > 0, else 0.0)
_REGRESSIONS_SQL = """
    SELECT cur.name,
           cur.scale  AS current_preset,
           base.scale AS baseline_preset,
           bm.value   AS baseline_eps,
           cm.value   AS current_eps,
           CASE WHEN bm.value > 0 THEN cm.value / bm.value - 1.0
                ELSE 0.0 END AS delta,
           CASE WHEN bm.value > 0
                 AND cm.value / bm.value - 1.0 < -:threshold THEN 1
                ELSE 0 END AS regressed
    FROM runs cur
    JOIN metrics cm ON cm.run_id = cur.run_id AND cm.name = :metric
    JOIN runs base
      ON base.name = cur.name
     AND base.kind = cur.kind
     AND base.run_id <> cur.run_id
    JOIN metrics bm ON bm.run_id = base.run_id AND bm.name = :metric
"""


def regressions(
    store,
    threshold: float = 0.10,
    metric: str = "events_per_sec",
    kind: str = "bench",
    baseline_label: str = "baseline",
    current_label: Optional[str] = None,
    current_ids: Optional[Mapping[str, str]] = None,
    baseline_ids: Optional[Mapping[str, str]] = None,
) -> Table:
    """Latest current run per benchmark vs its baseline run.

    With ``current_ids``/``baseline_ids`` (name -> run id mappings, as
    returned by the capture layer and :meth:`RunStore.ingest_baseline`),
    the join is pinned to exactly those runs and rows come back in
    current-mapping order — the ``repro bench --against`` gate.  Without
    them, "current" is the latest run per name whose label is not the
    baseline label, and "baseline" the latest ``baseline``-labelled run.

    Raises :class:`ValueError` on a preset mismatch between a benchmark
    and its baseline entry, like the in-memory comparator.
    """
    params: Dict[str, Any] = {"threshold": float(threshold), "metric": metric}
    sql = _REGRESSIONS_SQL
    if current_ids is not None or baseline_ids is not None:
        if current_ids is None or baseline_ids is None:
            raise ValueError("current_ids and baseline_ids go together")
        cur_marks = ",".join(f":cur{i}" for i in range(len(current_ids)))
        base_marks = ",".join(f":base{i}" for i in range(len(baseline_ids)))
        params.update(
            {f"cur{i}": rid for i, rid in enumerate(current_ids.values())}
        )
        params.update(
            {f"base{i}": rid for i, rid in enumerate(baseline_ids.values())}
        )
        sql += f"""
            WHERE cur.run_id IN ({cur_marks or "''"})
              AND base.run_id IN ({base_marks or "''"})
        """
    else:
        params["kind"] = kind
        params["baseline_label"] = baseline_label
        sql += """
            WHERE cur.kind = :kind
              AND COALESCE(cur.label, '') <> :baseline_label
              AND base.label = :baseline_label
              AND cur.rowid = (
                  SELECT MAX(c2.rowid) FROM runs c2
                  WHERE c2.kind = cur.kind AND c2.name = cur.name
                    AND COALESCE(c2.label, '') <> :baseline_label)
              AND base.rowid = (
                  SELECT MAX(b2.rowid) FROM runs b2
                  WHERE b2.kind = base.kind AND b2.name = base.name
                    AND b2.label = :baseline_label)
        """
        if current_label is not None:
            sql = sql.replace(
                "COALESCE(cur.label, '') <> :baseline_label",
                "cur.label = :current_label",
            ).replace(
                "COALESCE(c2.label, '') <> :baseline_label",
                "c2.label = :current_label",
            )
            params["current_label"] = current_label
    table = store.query(sql, params)
    for row in table.rows:
        name, current_preset, baseline_preset = row[0], row[1], row[2]
        if current_preset != baseline_preset:
            raise ValueError(
                f"benchmark {name!r}: cannot compare preset "
                f"{current_preset!r} against baseline preset "
                f"{baseline_preset!r}"
            )
    if current_ids:
        order = {name: index for index, name in enumerate(current_ids)}
        table.rows.sort(key=lambda row: order.get(row[0], len(order)))
    else:
        table.rows.sort(key=lambda row: row[0])
    table.title = f"regressions: {metric} vs baseline (threshold {threshold:.0%})"
    return table


def drift(store, include_bench: bool = False) -> Table:
    """Identical run identities that recorded different metrics.

    Benchmarks are excluded by default: their wall-clock throughput
    metrics legitimately differ run to run, so every bench pair would
    be reported as drift.
    """
    sql = """
        SELECT r.kind, r.name, r.spec_hash, r.seed, r.scale,
               COUNT(*) AS runs,
               COUNT(DISTINCT r.metrics_digest) AS digests,
               COUNT(DISTINCT COALESCE(r.git_rev, '')) AS revisions
        FROM runs r
        WHERE (:include_bench OR r.kind <> 'bench')
        GROUP BY r.kind, r.name, r.spec_hash, r.seed, r.scale
        HAVING COUNT(DISTINCT r.metrics_digest) > 1
        ORDER BY r.kind, r.name, r.spec_hash, r.seed, r.scale
    """
    table = store.query(sql, {"include_bench": int(bool(include_bench))})
    table.title = "drift: same spec/seed/scale, different metrics"
    return table


def bench_gate(
    store,
    current_ids: Mapping[str, str],
    baseline_ids: Mapping[str, str],
    max_regression: float,
) -> List["Comparison"]:
    """The query-backed regression gate, as Comparison objects.

    Runs the :func:`regressions` canned query pinned to the given run
    ids and converts the rows back into
    :class:`~repro.bench.harness.Comparison` values, so ``repro bench
    --against`` prints and exits identically whether the verdict came
    from the in-memory comparator or from the warehouse.
    """
    from repro.bench.harness import Comparison

    table = regressions(
        store,
        threshold=max_regression,
        current_ids=current_ids,
        baseline_ids=baseline_ids,
    )
    return [
        Comparison(
            name=str(row[0]),
            baseline_eps=float(row[3]),
            current_eps=float(row[4]),
            delta=float(row[5]),
            regressed=bool(row[6]),
        )
        for row in table.rows
    ]


#: canned query name -> callable(store, **options) -> Table
CANNED: Dict[str, Callable[..., Table]] = {
    "ranking": ranking,
    "trend": trend,
    "regressions": regressions,
    "drift": drift,
}


def run_canned(store, query, **options: Any) -> Table:
    """Dispatch one canned query by name.

    ::

        >>> run_canned(None, "nope")
        Traceback (most recent call last):
        ...
        ValueError: unknown canned query 'nope' (have: drift, ranking, regressions, trend)
    """
    # *query* deliberately avoids the name ``name`` — several canned
    # queries take a ``name=`` filter option of their own
    try:
        runner = CANNED[query]
    except KeyError:
        raise ValueError(
            f"unknown canned query {query!r} (have: {', '.join(sorted(CANNED))})"
        ) from None
    return runner(store, **options)
