"""Pluggable pilot-job supply controllers (the supply-policy subsystem).

The paper's fixed *fib*/*var* strategies and four feedback controllers
(queue-aware, ewma, pid, hybrid) behind one interface::

    policy.observe(SupplyObservation) -> SubmissionPlan

The shared replenishment loop that drives a policy against a live
cluster is :class:`repro.hpcwhisk.job_manager.PolicyJobManager`; the
:mod:`repro.api` layer exposes every policy as a ``supply`` component,
and :mod:`repro.supply.matrix` ranks policies against each other across
workloads and cluster shapes (``repro matrix``).
"""

from repro.supply.base import (
    NO_SUBMISSIONS,
    PilotRequest,
    SubmissionPlan,
    SupplyObservation,
    SupplyPolicy,
    fill_to_depth,
)
from repro.supply.policies import (
    FEEDBACK_POLICIES,
    POLICY_NAMES,
    EwmaPolicy,
    FibPolicy,
    HybridPolicy,
    PidGains,
    PidPolicy,
    QueueAwarePolicy,
    VarPolicy,
    make_policy,
)

__all__ = [
    "EwmaPolicy",
    "FEEDBACK_POLICIES",
    "FibPolicy",
    "HybridPolicy",
    "NO_SUBMISSIONS",
    "POLICY_NAMES",
    "PidGains",
    "PidPolicy",
    "PilotRequest",
    "QueueAwarePolicy",
    "SubmissionPlan",
    "SupplyObservation",
    "SupplyPolicy",
    "VarPolicy",
    "fill_to_depth",
    "make_policy",
]
