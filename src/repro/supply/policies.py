"""The supply controllers: the paper's two strategies plus four
feedback policies.

* :class:`FibPolicy` / :class:`VarPolicy` — the paper's hand-tuned
  strategies (Sec. III-D), re-expressed on the shared controller loop.
  Their decision rules are ported verbatim from the historical
  ``FibJobManager``/``VarJobManager`` and the golden-trace suite pins
  them byte-identical.
* :class:`QueueAwarePolicy` — targets a pilot inventory proportional to
  the middleware's activation backlog (OpenWhisk-style reactive
  scaling: more queued demand, more queued workers).
* :class:`EwmaPolicy` — load-forecast driven *lengths*: an
  exponentially weighted moving average of invoker busyness picks how
  long the next pilots should be (sustained load amortizes warm-ups
  over long jobs; bursty load prefers short, quickly-placed jobs).
* :class:`PidPolicy` — classic error feedback on the idle-invoker
  count with conditional-integration anti-windup; holds a configured
  spare-capacity headroom.
* :class:`HybridPolicy` — a scaled-down fib floor (guaranteed baseline
  harvest) plus a reactive burst of short jobs when backlog spikes.

All six are deterministic (no policy draws random numbers) and
per-member: federations instantiate one controller per cluster via
:func:`make_policy` factories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hpcwhisk.lengths import JobLengthSet
from repro.supply.base import (
    NO_SUBMISSIONS,
    PilotRequest,
    SubmissionPlan,
    SupplyObservation,
    SupplyPolicy,
    clamp,
    fill_to_depth,
)


class FibPolicy(SupplyPolicy):
    """Fixed-length supply: ``queue_per_length`` queued jobs per length.

    Longest-first with length-proportional priority, exactly the
    shell-script rule of Sec. III-D-b.
    """

    name = "fib"

    def __init__(self, length_set: JobLengthSet, queue_per_length: int = 10) -> None:
        if queue_per_length < 1:
            raise ValueError("queue_per_length must be positive")
        self.length_set = length_set
        self.queue_per_length = queue_per_length

    def observe(self, observation: SupplyObservation) -> SubmissionPlan:
        counts: Dict[float, int] = {s: 0 for s in self.length_set.seconds}
        for job in observation.pending:
            counts[job.spec.time_limit] = counts.get(job.spec.time_limit, 0) + 1
        requests: List[PilotRequest] = []
        # Longest first so that, under the shared queue cap, long jobs
        # (highest priority anyway) are never crowded out.
        for seconds in sorted(self.length_set.seconds, reverse=True):
            deficit = self.queue_per_length - counts.get(seconds, 0)
            for _ in range(max(0, deficit)):
                # "The higher the execution time, the higher the job's
                # priority within its priority tier."
                requests.append(PilotRequest(seconds=seconds, priority=seconds))
        return SubmissionPlan(tuple(requests))

    def inventory_cap(self) -> Optional[int]:
        return self.queue_per_length * len(self.length_set.minutes)


class VarPolicy(SupplyPolicy):
    """Flexible-length supply: ``depth`` queued ``--time-min/--time`` jobs."""

    name = "var"

    def __init__(
        self, depth: int = 100, time_min: float = 120.0, time_max: float = 7200.0
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be positive")
        if not (0 < time_min <= time_max):
            raise ValueError("invalid var time bounds")
        self.depth = depth
        self.time_min = time_min
        self.time_max = time_max

    def observe(self, observation: SupplyObservation) -> SubmissionPlan:
        return fill_to_depth(
            self.depth - observation.queue_depth,
            self.time_max,
            time_min=self.time_min,
        )

    def inventory_cap(self) -> Optional[int]:
        return self.depth


class QueueAwarePolicy(SupplyPolicy):
    """Backlog-proportional inventory: queued demand begets queued workers.

    Target queue depth = ``base_depth + backlog_gain * backlog``,
    clamped to ``max_depth``, filled with fixed ``job_minutes`` pilots.
    With no demand it idles at the base inventory; a burst of buffered
    activations grows the pilot queue in the same round.
    """

    name = "queue-aware"

    def __init__(
        self,
        base_depth: int = 4,
        backlog_gain: float = 0.5,
        max_depth: int = 50,
        job_minutes: int = 4,
    ) -> None:
        if base_depth < 0 or max_depth < 1:
            raise ValueError("base_depth must be >= 0 and max_depth >= 1")
        if backlog_gain < 0:
            raise ValueError("backlog_gain must be >= 0")
        if job_minutes < 2 or job_minutes % 2:
            raise ValueError("job_minutes must be a positive even minute count")
        self.base_depth = base_depth
        self.backlog_gain = backlog_gain
        self.max_depth = max_depth
        self.job_minutes = job_minutes
        self._last_target = float(base_depth)

    def observe(self, observation: SupplyObservation) -> SubmissionPlan:
        target = clamp(
            self.base_depth + self.backlog_gain * observation.backlog,
            0.0,
            float(self.max_depth),
        )
        self._last_target = target
        deficit = int(math.ceil(target)) - observation.queue_depth
        return fill_to_depth(deficit, 60.0 * self.job_minutes)

    def inventory_cap(self) -> Optional[int]:
        return self.max_depth

    def diagnostics(self) -> Dict[str, float]:
        return {"target_depth": self._last_target}


class EwmaPolicy(SupplyPolicy):
    """Load-forecast driven lengths over a fixed queue depth.

    Tracks an EWMA of invoker busyness (executing activations per
    healthy invoker; 1.0 when saturated, and counted as saturated when
    demand is buffered with no healthy invoker at all).  The forecast
    indexes the length set: quiet forecasts pick the shortest class,
    saturated forecasts the longest — sustained load amortizes warm-up
    cost over long pilots, while a cold system keeps cheap short pilots
    that place quickly into small backfill windows.
    """

    name = "ewma"

    def __init__(
        self,
        length_set: JobLengthSet,
        alpha: float = 0.3,
        target_depth: int = 10,
    ) -> None:
        if not (0 < alpha <= 1):
            raise ValueError("alpha must be in (0, 1]")
        if target_depth < 1:
            raise ValueError("target_depth must be positive")
        self.length_set = length_set
        self.alpha = alpha
        self.target_depth = target_depth
        self.level = 0.0

    def _load_signal(self, observation: SupplyObservation) -> float:
        if observation.healthy_invokers > 0:
            return clamp(
                observation.executing_activations / observation.healthy_invokers,
                0.0,
                1.0,
            )
        # No healthy capacity: queued demand anywhere means "saturated".
        return 1.0 if observation.backlog > 0 else 0.0

    def observe(self, observation: SupplyObservation) -> SubmissionPlan:
        signal = self._load_signal(observation)
        self.level += self.alpha * (signal - self.level)
        lengths = self.length_set.minutes
        index = min(len(lengths) - 1, int(self.level * len(lengths)))
        deficit = self.target_depth - observation.queue_depth
        return fill_to_depth(deficit, 60.0 * lengths[index])

    def inventory_cap(self) -> Optional[int]:
        return self.target_depth

    def diagnostics(self) -> Dict[str, float]:
        return {"ewma_level": self.level}


@dataclass(frozen=True)
class PidGains:
    """The PID controller's gains (per replenishment round)."""

    kp: float = 1.5
    ki: float = 0.25
    kd: float = 0.0

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ValueError("PID gains must be >= 0")


class PidPolicy(SupplyPolicy):
    """Error feedback on the idle-invoker count, with anti-windup.

    Holds ``target_idle`` spare healthy invokers: the control error is
    ``target_idle - idle_invokers``, the PID output (plus the running
    queue as implicit plant state) is the desired pilot queue depth,
    clamped to ``[0, max_depth]``.  Anti-windup is conditional
    integration — the integrator freezes while the output is saturated
    and the error would push it further out, so a long outage does not
    wind up a huge queue burst for the recovery.
    """

    name = "pid"

    def __init__(
        self,
        target_idle: int = 2,
        gains: PidGains = PidGains(),
        max_depth: int = 40,
        job_minutes: int = 4,
    ) -> None:
        if target_idle < 0:
            raise ValueError("target_idle must be >= 0")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if job_minutes < 2 or job_minutes % 2:
            raise ValueError("job_minutes must be a positive even minute count")
        self.target_idle = target_idle
        self.gains = gains
        self.max_depth = max_depth
        self.job_minutes = job_minutes
        self.integral = 0.0
        self._previous_error: Optional[float] = None
        self._last_output = 0.0

    def observe(self, observation: SupplyObservation) -> SubmissionPlan:
        error = float(self.target_idle - observation.idle_invokers)
        derivative = (
            0.0 if self._previous_error is None else error - self._previous_error
        )
        gains = self.gains
        unsaturated = (
            gains.kp * error + self.integral + gains.ki * error + gains.kd * derivative
        )
        output = clamp(unsaturated, 0.0, float(self.max_depth))
        saturated = unsaturated != output
        if not saturated or (unsaturated > output) != (error > 0):
            # Integrate only while unsaturated, or while the error is
            # actively driving the output back into range.
            self.integral += gains.ki * error
            self.integral = clamp(self.integral, 0.0, float(self.max_depth))
        self._previous_error = error
        self._last_output = output
        deficit = int(round(output)) - observation.queue_depth
        return fill_to_depth(deficit, 60.0 * self.job_minutes)

    def inventory_cap(self) -> Optional[int]:
        return self.max_depth

    def diagnostics(self) -> Dict[str, float]:
        return {
            "pid_error": (
                0.0 if self._previous_error is None else self._previous_error
            ),
            "pid_integral": self.integral,
            "pid_output": self._last_output,
        }


class HybridPolicy(SupplyPolicy):
    """Fib floor + reactive burst.

    A scaled-down :class:`FibPolicy` (``floor_per_length`` per class;
    ``0`` disables the floor for a burst-only controller) guarantees
    baseline harvest across all window sizes; when the middleware
    backlog exceeds ``burst_threshold``, up to ``burst_size`` short
    ``burst_minutes`` pilots ride along to absorb the spike.  Floor
    jobs come first in the plan, so under a tight budget the guaranteed
    inventory wins over the burst.
    """

    name = "hybrid"

    def __init__(
        self,
        length_set: JobLengthSet,
        floor_per_length: int = 2,
        burst_threshold: int = 4,
        burst_size: int = 8,
        burst_minutes: int = 2,
    ) -> None:
        if floor_per_length < 0:
            raise ValueError("floor_per_length must be >= 0")
        if burst_threshold < 1 or burst_size < 0:
            raise ValueError("burst_threshold must be >= 1 and burst_size >= 0")
        if burst_minutes < 2 or burst_minutes % 2:
            raise ValueError("burst_minutes must be a positive even minute count")
        self.floor = (
            FibPolicy(length_set, queue_per_length=floor_per_length)
            if floor_per_length > 0
            else None
        )
        self.burst_threshold = burst_threshold
        self.burst_size = burst_size
        self.burst_minutes = burst_minutes
        self._last_burst = 0

    def observe(self, observation: SupplyObservation) -> SubmissionPlan:
        plan = (
            self.floor.observe(observation)
            if self.floor is not None
            else NO_SUBMISSIONS
        )
        burst = 0
        if observation.backlog >= self.burst_threshold:
            burst = self.burst_size
        self._last_burst = burst
        if not burst:
            return plan
        extra = tuple(
            PilotRequest(seconds=60.0 * self.burst_minutes) for _ in range(burst)
        )
        return SubmissionPlan(plan.requests + extra)

    def inventory_cap(self) -> Optional[int]:
        floor_cap = 0 if self.floor is None else (self.floor.inventory_cap() or 0)
        return floor_cap + self.burst_size

    def diagnostics(self) -> Dict[str, float]:
        return {"burst_jobs": float(self._last_burst)}


#: feedback controllers constructible by name (fib/var excluded: their
#: configuration lives in :class:`~repro.hpcwhisk.config.HPCWhiskConfig`)
FEEDBACK_POLICIES = ("queue-aware", "ewma", "pid", "hybrid")

#: every policy name the supply layer knows
POLICY_NAMES = ("fib", "var") + FEEDBACK_POLICIES


def make_policy(name: str, length_set: JobLengthSet, **options) -> SupplyPolicy:
    """Build one fresh controller instance by registry name.

    ``length_set`` feeds the policies that pick from a length menu;
    ``options`` are forwarded to the policy constructor.  Factories must
    be called once per federation member — controller state (EWMA
    levels, PID integrators) is never shared across clusters.
    """
    if name == "fib":
        return FibPolicy(length_set, **options)
    if name == "var":
        return VarPolicy(**options)
    if name == "queue-aware":
        return QueueAwarePolicy(**options)
    if name == "ewma":
        return EwmaPolicy(length_set, **options)
    if name == "pid":
        return PidPolicy(**options)
    if name == "hybrid":
        return HybridPolicy(length_set, **options)
    raise KeyError(f"unknown supply policy {name!r}; known: {list(POLICY_NAMES)}")
