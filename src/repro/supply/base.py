"""The supply-control contract: observations in, submission plans out.

The paper hand-tunes two pilot-job supply strategies (Sec. III-D): *fib*
keeps 10 fixed-length jobs queued per length class, *var* keeps 100
flexible-length jobs queued.  Both are really instances of one control
loop — every 15 seconds, look at the queue and top it up — differing
only in the decision rule.  This module names that loop's interface:

* :class:`SupplyObservation` — everything a controller may look at in
  one replenishment round: the pilot queue, the cluster's idle surface,
  and the middleware's demand signals (healthy invokers, buffered and
  in-flight activations).  Building one is *pure* — observation never
  perturbs the simulation, so swapping policies cannot move events.
* :class:`PilotRequest` / :class:`SubmissionPlan` — what the policy
  wants queued: fixed-length jobs (with fib's length-proportional
  priority) or flexible ``--time-min/--time`` jobs.
* :class:`SupplyPolicy` — the controller interface:
  ``observe(observation) -> SubmissionPlan``.  Policies are mutable
  (EWMA levels, PID integrators) and **per-member**: a federation gives
  every cluster its own instance, so feedback loops never cross
  members.

The shared loop lives in :class:`repro.hpcwhisk.job_manager.PolicyJobManager`;
it enforces the global queue budget (``max_queued`` minus the current
depth) by truncating the plan, so a policy can never overload Slurm no
matter what it asks for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class PilotRequest:
    """One pilot job a policy wants queued.

    ``seconds`` is the requested time limit; ``time_min`` (when given)
    makes the job flexible (Slurm grants any limit in
    ``[time_min, seconds]``, the var model's ``--time-min/--time``
    shape); ``priority`` (when given) sets the within-tier priority —
    fib uses length-proportional priorities to force longest-first
    placement.

    ::

        >>> PilotRequest(seconds=900.0).is_flexible
        False
        >>> PilotRequest(seconds=900.0, time_min=300.0).is_flexible
        True
        >>> PilotRequest(seconds=0.0)
        Traceback (most recent call last):
        ...
        ValueError: a pilot request needs a positive time limit
    """

    seconds: float
    time_min: Optional[float] = None
    priority: Optional[float] = None

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError("a pilot request needs a positive time limit")
        if self.time_min is not None and not (0 < self.time_min <= self.seconds):
            raise ValueError("time_min must be in (0, seconds]")

    @property
    def is_flexible(self) -> bool:
        return self.time_min is not None


@dataclass(frozen=True)
class SubmissionPlan:
    """What one :meth:`SupplyPolicy.observe` round wants submitted.

    Requests are submitted in order until the manager's per-round budget
    (``max_queued - queue_depth``) runs out, so policies should list the
    most important jobs first (fib lists longest-first).
    """

    requests: Tuple[PilotRequest, ...] = ()

    def __len__(self) -> int:
        return len(self.requests)


#: the empty plan — "the queue is fine as it is"
NO_SUBMISSIONS = SubmissionPlan()


@dataclass(frozen=True)
class SupplyObservation:
    """One replenishment round's view of cluster + middleware state.

    Everything here is a *read*: assembling an observation draws no
    random numbers and schedules no events, so the observation machinery
    itself cannot change a simulation's trajectory (the golden-trace
    suite pins this — fib/var on the policy loop are byte-identical to
    the historical managers).

    Middleware fields are 0 for reduced stacks without a FaaS layer.

    The derived views a policy usually reasons over::

        >>> obs = SupplyObservation(
        ...     now=15.0, round_index=1, pending=(), queue_depth=0,
        ...     budget=10, running_pilots=2, idle_nodes=4, total_nodes=8,
        ...     healthy_invokers=5, inflight_activations=7,
        ...     buffered_activations=3)
        >>> obs.backlog                 # unpulled broker messages
        3
        >>> obs.executing_activations   # pulled and running here
        4
        >>> obs.idle_invokers           # spare capacity right now
        1
    """

    #: simulation time of this round
    now: float
    #: 0-based replenishment round counter
    round_index: int
    #: pilot jobs currently pending in the whisk partition
    pending: Tuple[object, ...]
    #: ``len(pending)`` (convenience; policies mostly need the count)
    queue_depth: int
    #: how many submissions the manager will accept this round
    budget: int
    #: pilot jobs currently running
    running_pilots: int
    #: cluster nodes currently idle (harvestable right now)
    idle_nodes: int
    #: total nodes in this member cluster
    total_nodes: int
    #: invokers registered healthy with the controller (this member's)
    healthy_invokers: int
    #: activations accepted but not yet resolved (executing + queued),
    #: scoped to this member's invokers
    inflight_activations: int
    #: activations sitting unpulled on this member's invoker topics
    buffered_activations: int
    #: activations on the global fast lane (republished demand no
    #: member owns yet — every member sees the same number)
    fastlane_activations: int = 0

    @property
    def backlog(self) -> int:
        """Demand not being served right now: unpulled broker messages.

        Member-scoped invoker queues plus the shared fast lane — any
        member could absorb fast-laned demand, so all of them see it.
        """
        return self.buffered_activations + self.fastlane_activations

    @property
    def executing_activations(self) -> int:
        """In-flight activations one of this member's invokers has pulled.

        Both terms are member-scoped (the fast lane is deliberately
        excluded: subtracting fleet-wide demand from a member-scoped
        count would floor busy members to "idle" during outages).
        """
        return max(0, self.inflight_activations - self.buffered_activations)

    @property
    def idle_invokers(self) -> int:
        """Healthy invokers with no activation in hand (spare capacity)."""
        return max(0, self.healthy_invokers - self.executing_activations)


class SupplyPolicy:
    """The uniform controller interface every supply strategy implements.

    Subclasses override :meth:`observe`; the shared manager loop calls it
    once per replenishment round and submits the plan (budget-truncated).
    ``name`` doubles as the pilot-job name prefix (``whisk-<name>-…``)
    and as the component name in the :mod:`repro.api` registry.
    """

    name: str = "policy"

    def observe(self, observation: SupplyObservation) -> SubmissionPlan:
        raise NotImplementedError

    def inventory_cap(self) -> Optional[int]:
        """The most pilots one plan ever asks for (None = unbounded).

        A per-plan bound — ``len(plan.requests) <= inventory_cap()`` on
        every round (the property-test suite pins this).  It is *not* a
        bound on total queue occupancy: a policy reacting to state it
        does not fully own (hybrid's backlog burst, fib facing foreign
        jobs in its partition) can legitimately hold more queued than
        one round's cap; the manager's ``max_queued`` budget is the
        occupancy bound.
        """
        return None

    def diagnostics(self) -> Dict[str, float]:
        """Flat controller internals (gains, levels, errors) for probes."""
        return {}


def fill_to_depth(
    deficit: int,
    seconds: float,
    *,
    time_min: Optional[float] = None,
    priority: Optional[float] = None,
) -> SubmissionPlan:
    """A plan of ``deficit`` identical requests (no-op when <= 0).

    ::

        >>> plan = fill_to_depth(3, 600.0, priority=600.0)
        >>> len(plan)
        3
        >>> plan.requests[0].seconds
        600.0
        >>> fill_to_depth(-2, 600.0) is NO_SUBMISSIONS
        True
    """
    if deficit <= 0:
        return NO_SUBMISSIONS
    request = PilotRequest(seconds=seconds, time_min=time_min, priority=priority)
    return SubmissionPlan(tuple([request] * deficit))


def clamp(value: float, low: float, high: float) -> float:
    """Saturate *value* into ``[low, high]``.

    ::

        >>> clamp(5.0, 0.0, 2.0)
        2.0
        >>> clamp(-1.0, 0.0, 2.0)
        0.0
        >>> clamp(1.5, 0.0, 2.0)
        1.5
    """
    return max(low, min(high, value))
