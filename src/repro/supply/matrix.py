"""The policy × workload × cluster-shape matrix runner (``repro matrix``).

Sweeps supply policies against workload families and cluster shapes —
every combination is one cell of the registered ``supply`` scenario,
executed (optionally in parallel worker processes) by the
:class:`~repro.scenarios.sweep.SweepExecutor`, so per-run seeds,
serial/parallel byte-equality, and cross-seed aggregation are inherited
from the sweep machinery.

Each cell is then scored on the four questions the paper's supply
section asks:

* **harvest** — share of the idle surface turned into FaaS capacity
  (``coverage``, higher is better);
* **slowdown** — mean queue wait inflicted on prime batch jobs
  (``prime_mean_wait_s``, lower is better);
* **cold-start rate** — share of container starts that were cold
  (``cold_start_rate``, lower is better);
* **churn** — pilot jobs started per hour (``pilot_churn_per_h``,
  lower is better: churn is scheduler pressure and warm-up waste).

Scores are weighted min-max normalizations across the matrix's cells
(see :data:`OBJECTIVES`), so a ranking is always relative to the matrix
it came from.  The result renders as a ranked table and exports to
JSON/CSV for dashboards.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.scenarios.sweep import SweepExecutor, SweepResult, SweepSpec

#: metric key -> (weight, higher_is_better); weights sum to 1
OBJECTIVES: Mapping[str, Tuple[float, bool]] = {
    "harvest": (0.40, True),
    "slowdown_s": (0.25, False),
    "cold_start_rate": (0.20, False),
    "churn_per_h": (0.15, False),
}

#: cell-scenario metric feeding each objective
OBJECTIVE_SOURCES: Mapping[str, str] = {
    "harvest": "coverage",
    "slowdown_s": "prime_mean_wait_s",
    "cold_start_rate": "cold_start_rate",
    "churn_per_h": "pilot_churn_per_h",
}


@dataclass(frozen=True)
class MatrixCell:
    """One ranked (policy, workload, shape) combination."""

    policy: str
    workload: str
    nodes: int
    #: objective name -> cross-seed mean
    objectives: Mapping[str, float]
    #: weighted normalized score in [0, 1] (relative to this matrix)
    score: float = 0.0
    #: 1-based rank within the matrix (1 = best)
    rank: int = 0

    def label(self, with_nodes: bool = False) -> str:
        base = f"{self.policy}+{self.workload}"
        return f"{base}+n{self.nodes}" if with_nodes else base


@dataclass
class MatrixResult:
    """A ranked matrix plus the raw sweep it came from."""

    cells: List[MatrixCell]
    sweep: SweepResult
    seeds: int
    scale: str
    #: labels carry the node count when more than one shape was swept
    label_nodes: bool = False
    #: objectives dropped because no cell reported them (reduced stacks)
    missing_objectives: Tuple[str, ...] = ()

    def labels(self) -> List[str]:
        return [cell.label(self.label_nodes) for cell in self.cells]

    def flat_metrics(self) -> Dict[str, float]:
        """The matrix as flat ``name`` / ``name@label`` float metrics.

        The shape every flat-metric consumer shares: the
        ``supply_matrix`` scenario result, the warehouse's matrix rows,
        and sweep aggregation all read this one flattening — matrix
        size, then per-cell score, rank, and objectives suffixed with
        the cell's label.
        """
        metrics: Dict[str, float] = {
            "matrix_cells": float(len(self.cells)),
            "matrix_runs": float(len(self.cells) * self.seeds),
        }
        for cell in self.cells:
            label = cell.label(self.label_nodes)
            metrics[f"score@{label}"] = cell.score
            metrics[f"rank@{label}"] = float(cell.rank)
            for name, value in cell.objectives.items():
                metrics[f"{name}@{label}"] = value
        return metrics

    def to_dict(self) -> Dict[str, object]:
        from repro.provenance import MATRIX_SCHEMA

        return {
            "schema": MATRIX_SCHEMA,
            "spec_hash": self.sweep.spec.spec_hash(),
            "scale": self.scale,
            "seeds": self.seeds,
            "objectives": {
                name: {"weight": weight, "higher_is_better": better}
                for name, (weight, better) in OBJECTIVES.items()
                if name not in self.missing_objectives
            },
            "cells": [
                {
                    "rank": cell.rank,
                    "label": cell.label(self.label_nodes),
                    "policy": cell.policy,
                    "workload": cell.workload,
                    "nodes": cell.nodes,
                    "score": cell.score,
                    **{k: cell.objectives[k] for k in sorted(cell.objectives)},
                }
                for cell in self.cells
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_table(self) -> "Table":
        """One row per cell, rank order (floats repr'd for byte-stable CSV)."""
        from repro.analysis.tables import Table

        objective_names = [
            name for name in OBJECTIVES if name not in self.missing_objectives
        ]
        return Table(
            columns=["rank", "label", "policy", "workload", "nodes", "score",
                     *objective_names],
            rows=[
                [
                    cell.rank,
                    cell.label(self.label_nodes),
                    cell.policy,
                    cell.workload,
                    cell.nodes,
                    repr(cell.score),
                    *[repr(cell.objectives.get(name, float("nan")))
                      for name in objective_names],
                ]
                for cell in self.cells
            ],
        )

    def to_csv(self) -> str:
        return self.to_table().to_csv()

    def render(self) -> str:
        """The ranked comparison table the CLI prints."""
        lines = [
            "SUPPLY MATRIX — ranked policy × workload comparison "
            f"({len(self.cells)} cells, {self.seeds} seed(s), "
            f"scale {self.scale})",
            "",
            f"{'rank':>4}  {'cell':<24} {'score':>6}  {'harvest%':>8}  "
            f"{'wait s':>7}  {'cold%':>6}  {'churn/h':>8}",
        ]
        for cell in self.cells:
            objectives = cell.objectives
            lines.append(
                f"{cell.rank:>4}  {cell.label(self.label_nodes):<24} "
                f"{cell.score:>6.3f}  "
                f"{objectives.get('harvest', float('nan')) * 100:>8.2f}  "
                f"{objectives.get('slowdown_s', float('nan')):>7.1f}  "
                f"{objectives.get('cold_start_rate', float('nan')) * 100:>6.2f}  "
                f"{objectives.get('churn_per_h', float('nan')):>8.1f}"
            )
        lines += [
            "",
            "score = weighted min-max normalization across the cells above "
            "(harvest 40%, wait 25%, cold 20%, churn 15%); "
            "higher is better.",
        ]
        return "\n".join(lines)


def score_cells(cells: Sequence[MatrixCell]) -> Tuple[List[MatrixCell], Tuple[str, ...]]:
    """Rank cells by weighted normalized objectives.

    Min-max normalization per objective across the matrix; an objective
    with zero spread contributes a neutral 0.5 to every cell.
    Objectives absent from every cell are dropped (their weight is
    renormalized away) and reported back.  Ties break on the cell label,
    so the ranking is fully deterministic.
    """
    if not cells:
        return [], tuple(OBJECTIVES)
    present = [
        name
        for name in OBJECTIVES
        if any(name in cell.objectives for cell in cells)
    ]
    missing = tuple(name for name in OBJECTIVES if name not in present)
    total_weight = sum(OBJECTIVES[name][0] for name in present)
    spans: Dict[str, Tuple[float, float]] = {}
    for name in present:
        values = [
            cell.objectives[name] for cell in cells if name in cell.objectives
        ]
        spans[name] = (min(values), max(values))

    scored: List[MatrixCell] = []
    for cell in cells:
        score = 0.0
        for name in present:
            weight, higher_is_better = OBJECTIVES[name]
            low, high = spans[name]
            if name not in cell.objectives:
                goodness = 0.0
            elif high == low:
                goodness = 0.5
            else:
                normalized = (cell.objectives[name] - low) / (high - low)
                goodness = normalized if higher_is_better else 1.0 - normalized
            score += (weight / total_weight) * goodness
        scored.append(
            MatrixCell(
                policy=cell.policy,
                workload=cell.workload,
                nodes=cell.nodes,
                objectives=cell.objectives,
                score=score,
            )
        )
    scored.sort(key=lambda c: (-c.score, c.label(with_nodes=True)))
    return [
        MatrixCell(
            policy=cell.policy,
            workload=cell.workload,
            nodes=cell.nodes,
            objectives=cell.objectives,
            score=cell.score,
            rank=index + 1,
        )
        for index, cell in enumerate(scored)
    ], missing


def matrix_sweep_spec(
    policies: Sequence[str],
    workloads: Sequence[str],
    shapes: Sequence[int],
    *,
    hours: float,
    qps: float,
    seeds: int = 1,
    scale: str = "quick",
    jobs: int = 1,
    base_seed: Optional[int] = None,
) -> SweepSpec:
    """The matrix as a plain sweep over the ``supply`` cell scenario."""
    if not policies or not workloads or not shapes:
        raise ValueError("the matrix needs >= 1 policy, workload, and shape")
    return SweepSpec(
        scenario="supply",
        grid={
            "policy": list(policies),
            "workload": list(workloads),
            "nodes": [int(n) for n in shapes],
        },
        fixed={"hours": float(hours), "qps": float(qps)},
        seeds=seeds,
        base_seed=base_seed,
        scale=scale,
        jobs=jobs,
    )


def run_matrix(
    policies: Sequence[str],
    workloads: Sequence[str],
    shapes: Sequence[int] = (48,),
    *,
    hours: float = 1.0,
    qps: float = 5.0,
    seeds: int = 1,
    scale: str = "quick",
    jobs: int = 1,
    base_seed: Optional[int] = None,
    executor: Optional[SweepExecutor] = None,
) -> MatrixResult:
    """Execute the matrix and return the ranked comparison."""
    spec = matrix_sweep_spec(
        policies,
        workloads,
        shapes,
        hours=hours,
        qps=qps,
        seeds=seeds,
        scale=scale,
        jobs=jobs,
        base_seed=base_seed,
    )
    executor = executor or SweepExecutor()
    sweep = executor.run(spec)
    cells: List[MatrixCell] = []
    for cell in sweep.cells:
        objectives = {
            name: cell.metrics[source]["mean"]
            for name, source in OBJECTIVE_SOURCES.items()
            if source in cell.metrics
        }
        cells.append(
            MatrixCell(
                policy=str(cell.params["policy"]),
                workload=str(cell.params["workload"]),
                nodes=int(cell.params["nodes"]),
                objectives=objectives,
            )
        )
    ranked, missing = score_cells(cells)
    result = MatrixResult(
        cells=ranked,
        sweep=sweep,
        seeds=seeds,
        scale=scale,
        label_nodes=len(set(shapes)) > 1,
        missing_objectives=missing,
    )

    from repro.warehouse import capture

    capture.record_matrix(result)
    return result
