"""Composable simulation API: declarative stack assembly.

The paper's system is a *composition* — a Slurm cluster + a pilot-job
supply + OpenWhisk-like middleware + load clients, measured from three
perspectives.  This package makes that composition a first-class,
declarative object instead of hand-rolled wiring inside each experiment
module:

* :class:`~repro.api.stack.Stack` — one experiment as data: a
  :class:`ClusterSpec`, a :class:`SupplySpec`, a :class:`MiddlewareSpec`,
  plus :class:`WorkloadSpec` s and :class:`ProbeSpec` s;
* :data:`~repro.api.registry.COMPONENTS` + :func:`~repro.api.registry.component`
  — the registry the specs resolve against (``repro compose --list``);
* :class:`~repro.api.stack.SimulationReport` — uniform output whose
  ``metrics`` merge every probe's flat ``name -> float`` output;
* :func:`~repro.api.config.run_config` /
  :func:`~repro.api.config.stack_from_config` — the YAML front door
  behind ``repro run --config``.

The ``day`` and ``fig3`` experiments are themselves expressed through
this API, so composed stacks and the paper's experiments share one code
path (and the golden-trace suite pins them byte-for-byte).
"""

from repro.api.config import (
    config_mode,
    load_config_file,
    run_config,
    stack_from_config,
)
from repro.api.registry import (
    COMPONENTS,
    Component,
    ComponentRegistry,
    component,
    load_builtin_components,
)
from repro.api.stack import (
    ClusterSpec,
    ComponentSpec,
    MiddlewareBuild,
    MiddlewareSpec,
    Probe,
    ProbeSpec,
    RouterSpec,
    SimulationReport,
    Stack,
    StackContext,
    SupplyBuild,
    SupplySpec,
    WorkloadSpec,
)

__all__ = [
    "COMPONENTS",
    "ClusterSpec",
    "Component",
    "ComponentRegistry",
    "ComponentSpec",
    "MiddlewareBuild",
    "MiddlewareSpec",
    "Probe",
    "ProbeSpec",
    "RouterSpec",
    "SimulationReport",
    "Stack",
    "StackContext",
    "SupplyBuild",
    "SupplySpec",
    "WorkloadSpec",
    "component",
    "config_mode",
    "load_builtin_components",
    "load_config_file",
    "run_config",
    "stack_from_config",
]
