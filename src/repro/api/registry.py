"""The component registry behind the composable simulation API.

Every pluggable piece of a :class:`~repro.api.stack.Stack` — cluster,
supply model, middleware, workload, probe — is a *component*: a factory
function registered under a ``(kind, name)`` key with the
:func:`component` decorator.  The stack builder resolves specs against
this registry, ``repro compose --list`` renders its catalogue, and the
YAML config path validates names against it, so adding one decorated
factory makes a component available to all three at once.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

#: the six component kinds a stack composes
KINDS: Tuple[str, ...] = (
    "cluster",
    "supply",
    "middleware",
    "router",
    "workload",
    "probe",
)


@dataclass(frozen=True)
class Component:
    """One registered component: a factory plus catalogue metadata."""

    kind: str
    name: str
    factory: Callable[..., Any]
    help: str = ""

    def parameters(self) -> List[Tuple[str, Any]]:
        """``(name, default)`` pairs of the factory's tunable parameters.

        The leading context argument (named ``ctx``) is builder plumbing
        and is not part of the component's public parameter surface.
        """
        signature = inspect.signature(self.factory)
        return [
            (parameter.name, parameter.default)
            for parameter in signature.parameters.values()
            if parameter.name != "ctx"
            and parameter.kind
            in (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY)
        ]

    def param_names(self) -> List[str]:
        return [name for name, _default in self.parameters()]


class ComponentRegistry:
    """``(kind, name)`` -> :class:`Component`, with per-kind listing."""

    def __init__(self) -> None:
        self._components: Dict[Tuple[str, str], Component] = {}

    def add(self, comp: Component) -> None:
        if comp.kind not in KINDS:
            raise ValueError(
                f"component kind must be one of {KINDS}, got {comp.kind!r}"
            )
        key = (comp.kind, comp.name)
        if key in self._components:
            raise ValueError(f"{comp.kind} component {comp.name!r} registered twice")
        self._components[key] = comp

    def get(self, kind: str, name: str) -> Component:
        try:
            return self._components[(kind, name)]
        except KeyError:
            raise KeyError(
                f"unknown {kind} component {name!r}; known: {self.names(kind)}"
            ) from None

    def names(self, kind: str) -> List[str]:
        return [n for (k, n) in self._components if k == kind]

    def items(self, kind: Optional[str] = None) -> List[Component]:
        return [
            comp
            for (k, _n), comp in self._components.items()
            if kind is None or k == kind
        ]

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._components

    def __len__(self) -> int:
        return len(self._components)


#: the process-wide registry all built-in components register into
COMPONENTS = ComponentRegistry()


def component(
    kind: str,
    name: str,
    *,
    help: str = "",
    registry: ComponentRegistry = COMPONENTS,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register the decorated factory as the component ``(kind, name)``."""

    def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
        registry.add(Component(kind=kind, name=name, factory=factory, help=help))
        return factory

    return decorator


def load_builtin_components() -> ComponentRegistry:
    """Import the built-in component modules so they self-register."""
    import repro.api.components  # noqa: F401  (import populates COMPONENTS)
    import repro.api.probes  # noqa: F401

    return COMPONENTS
