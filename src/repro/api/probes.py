"""Built-in probes: uniform attach/collect measurement components.

A probe factory attaches live instrumentation to a running stack and
returns a :class:`~repro.api.stack.Probe`; after the simulation the
builder calls ``finish`` (stop pollers) and then ``collect`` (turn raw
logs into flat metrics + a rich artifact).  Probes collect in
declaration order and may consume artifacts of probes declared before
them — the clairvoyant ``coverage`` probe reads the ``slurm-sampler``
log, exactly like the Tables II/III pipeline.

Metric names are canonical: a composed stack that attaches
``slurm-sampler`` + ``coverage`` + ``ow-log`` + ``gatling-report``
reports the same metric keys as the registered ``day`` scenario, because
``day`` itself is expressed through these probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.analysis.coverage import CoverageResult, CoverageSimulator
from repro.analysis.idle_periods import intervals_by_node
from repro.analysis.metrics import PercentileSummary, percentile_summary
from repro.analysis.owlog import OWLevelStates, ow_level_states, ready_period_stats
from repro.analysis.sampler import SamplerLog, SlurmSampler
from repro.api.components import LengthSetLike, resolve_length_set
from repro.api.registry import component
from repro.api.stack import Probe, StackContext


# ---------------------------------------------------------------------------
# slurm-sampler


@dataclass
class SamplerArtifact:
    """Slurm-level perspective: the poll log plus derived summaries."""

    log: SamplerLog
    whisk_counts: np.ndarray
    available_counts: np.ndarray
    idle_counts: np.ndarray
    slurm_workers: PercentileSummary
    available_workers: PercentileSummary
    slurm_used_share: float
    zero_available_share: float


class SlurmSamplerProbe(Probe):
    def __init__(self, sampler: SlurmSampler) -> None:
        self.sampler = sampler

    def finish(self, ctx: StackContext) -> None:
        self.sampler.stop()

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        log = self.sampler.log
        whisk_counts = log.whisk_counts()
        available_counts = log.available_counts()
        idle_counts = log.idle_counts()
        total_available = float(available_counts.sum())
        slurm_used_share = (
            float(whisk_counts.sum()) / total_available if total_available else 0.0
        )
        artifact = SamplerArtifact(
            log=log,
            whisk_counts=whisk_counts,
            available_counts=available_counts,
            idle_counts=idle_counts,
            slurm_workers=percentile_summary(whisk_counts),
            available_workers=percentile_summary(available_counts),
            slurm_used_share=slurm_used_share,
            zero_available_share=float(np.mean(available_counts == 0)),
        )
        metrics = {
            "coverage": slurm_used_share,
            "avg_whisk_nodes": artifact.slurm_workers.avg,
            "avg_available_nodes": artifact.available_workers.avg,
            "zero_available_share": artifact.zero_available_share,
        }
        return metrics, artifact


@component("probe", "slurm-sampler", help="Slurm-level polling (Sec. IV-A)")
def slurm_sampler_probe(
    ctx: StackContext, pause: float = 10.0, whisk_partition: str = "whisk"
) -> SlurmSamplerProbe:
    sampler = SlurmSampler(
        ctx.env,
        ctx.system.slurm,
        ctx.streams.stream("sampler"),
        pause=pause,
        whisk_partition=whisk_partition,
    )
    return SlurmSamplerProbe(sampler)


# ---------------------------------------------------------------------------
# coverage (clairvoyant upper bound)


@dataclass
class CoverageArtifact:
    """Simulation perspective: the clairvoyant packing of the same surface."""

    simulation: CoverageResult
    warmup: float


class CoverageProbe(Probe):
    def __init__(
        self, length_set: LengthSetLike, warmup: float, source: str
    ) -> None:
        self.length_set = resolve_length_set(length_set)
        self.warmup = warmup
        self.source = source

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        sampler: Optional[SamplerArtifact] = ctx.artifacts.get(self.source)
        if sampler is None:
            raise ValueError(
                f"coverage probe needs the {self.source!r} probe declared "
                "before it (it packs the sampled availability surface)"
            )
        available = intervals_by_node(
            sampler.log.samples, "available", end_time=ctx.horizon
        )
        simulation = CoverageSimulator(warmup=self.warmup).run(
            available, self.length_set, horizon=ctx.horizon
        )
        metrics = {
            "sim_ready_share": simulation.ready_share,
            "sim_used_share": simulation.used_share,
        }
        return metrics, CoverageArtifact(simulation=simulation, warmup=self.warmup)


@component(
    "probe", "coverage", help="clairvoyant coverage bound over the sampled surface"
)
def coverage_probe(
    ctx: StackContext,
    length_set: LengthSetLike = "A1",
    warmup: float = 20.0,
    source: str = "slurm-sampler",
) -> CoverageProbe:
    return CoverageProbe(length_set=length_set, warmup=warmup, source=source)


# ---------------------------------------------------------------------------
# ow-log (OpenWhisk-level pilot timelines)


@dataclass
class OWLogArtifact:
    """OW-level perspective: pilot-timeline state accounting."""

    ow: OWLevelStates
    ready_periods: Dict[str, float]
    timelines: list = field(default_factory=list)


class OWLogProbe(Probe):
    def __init__(self, step: float) -> None:
        self.step = step

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        timelines = [
            t
            for t in ctx.system.pilot_timelines
            if t.job_started_at < ctx.horizon
        ]
        ow = ow_level_states(timelines, ctx.horizon, step=self.step)
        ready_periods = ready_period_stats(timelines)
        metrics = {
            "avg_healthy_invokers": ow.healthy.avg,
            "ready_period_median_s": ready_periods.get("median", float("nan")),
            "outage_total_s": ow.total_outage(),
            "longest_outage_s": ow.longest_outage(),
        }
        artifact = OWLogArtifact(
            ow=ow, ready_periods=ready_periods, timelines=timelines
        )
        return metrics, artifact


@component("probe", "ow-log", help="OpenWhisk-level worker-state accounting")
def ow_log_probe(ctx: StackContext, step: float = 10.0) -> OWLogProbe:
    return OWLogProbe(step=step)


# ---------------------------------------------------------------------------
# gatling-report (client-level perspective)


class GatlingReportProbe(Probe):
    def __init__(self, source: str) -> None:
        self.source = source

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        client = ctx.handles.get(self.source)
        if client is None:
            raise ValueError(
                f"gatling-report probe found no {self.source!r} workload handle"
            )
        report = client.report
        metrics = {
            "requests_total": float(report.total),
            "accepted_share": report.invoked_share,
            "success_of_accepted_share": report.success_share_of_invoked,
            "median_response_s": report.response_time_percentile(50),
        }
        return metrics, report


@component("probe", "gatling-report", help="client-level request outcomes")
def gatling_report_probe(
    ctx: StackContext, source: str = "gatling"
) -> GatlingReportProbe:
    return GatlingReportProbe(source=source)


# ---------------------------------------------------------------------------
# kernel-stats (simulation-kernel observability)


class KernelStatsProbe(Probe):
    def __init__(self, probe) -> None:
        self.probe = probe
        self.stats = None

    def finish(self, ctx: StackContext) -> None:
        self.stats = self.probe.stop()

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        stats = self.stats
        metrics = {
            "kernel_events_processed": float(stats.events_processed),
            "kernel_peak_queue_depth": float(stats.peak_queue_depth),
            #: wall-clock throughput — observability, not reproducible
            "kernel_events_per_sec": float(stats.events_per_sec),
        }
        return metrics, stats


@component("probe", "kernel-stats", help="simulation-kernel event counters")
def kernel_stats_probe(ctx: StackContext) -> KernelStatsProbe:
    from repro.bench.instrument import KernelProbe

    return KernelStatsProbe(KernelProbe().start())


# ---------------------------------------------------------------------------
# accounting (sacct-style prime-workload invasiveness)


class AccountingProbe(Probe):
    def __init__(self, partition: str) -> None:
        self.partition = partition

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        from repro.cluster.accounting import summarize

        accounts = summarize(ctx.system.slurm)
        prime = accounts.get(self.partition)
        metrics: Dict[str, float] = {}
        if prime is not None:
            metrics = {
                "prime_jobs_total": float(prime.jobs_total),
                "prime_mean_wait_s": prime.mean_wait,
                "prime_median_wait_s": prime.median_wait,
                "prime_node_hours": prime.node_hours,
            }
        whisk = accounts.get("whisk")
        if whisk is not None:
            metrics["whisk_node_hours"] = whisk.node_hours
        return metrics, accounts


@component("probe", "accounting", help="sacct-style per-partition job accounting")
def accounting_probe(ctx: StackContext, partition: str = "main") -> AccountingProbe:
    return AccountingProbe(partition=partition)


# ---------------------------------------------------------------------------
# loadbalancer-stats (warm-container routing quality)


class LoadBalancerStatsProbe(Probe):
    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        invokers = ctx.handles.get("invokers") or ctx.system.invokers
        if invokers:
            counts = [
                (inv.invoker_id, inv.pool.cold_starts, inv.pool.warm_hits)
                for inv in invokers
            ]
        else:
            # Pilot supplies: each timeline carries its invoker's final stats.
            counts = [
                (t.invoker_id, t.stats.cold_starts, t.stats.warm_hits)
                for t in ctx.system.pilot_timelines
                if t.stats is not None
            ]
        if not counts:
            raise ValueError(
                "loadbalancer-stats probe found no invokers (static fleet "
                "or finished pilot jobs)"
            )
        cold = sum(c for _id, c, _w in counts)
        warm = sum(w for _id, _c, w in counts)
        metrics = {
            "warm_hits": float(warm),
            "cold_starts": float(cold),
            "warm_ratio": warm / max(warm + cold, 1),
        }
        per_invoker = {
            invoker_id: {"cold_starts": c, "warm_hits": w}
            for invoker_id, c, w in counts
        }
        return metrics, per_invoker


@component("probe", "loadbalancer-stats", help="warm/cold container routing stats")
def loadbalancer_stats_probe(ctx: StackContext) -> LoadBalancerStatsProbe:
    return LoadBalancerStatsProbe()
