"""Built-in probes: uniform attach/collect measurement components.

A probe factory attaches live instrumentation to a running stack and
returns a :class:`~repro.api.stack.Probe`; after the simulation the
builder calls ``finish`` (stop pollers) and then ``collect`` (turn raw
logs into flat metrics + a rich artifact).  Probes collect in
declaration order and may consume artifacts of probes declared before
them — the clairvoyant ``coverage`` probe reads the ``slurm-sampler``
log, exactly like the Tables II/III pipeline.

Metric names are canonical: a composed stack that attaches
``slurm-sampler`` + ``coverage`` + ``ow-log`` + ``gatling-report``
reports the same metric keys as the registered ``day`` scenario, because
``day`` itself is expressed through these probes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

import numpy as np

from repro.analysis.coverage import CoverageResult, CoverageSimulator
from repro.analysis.idle_periods import intervals_by_node
from repro.analysis.metrics import PercentileSummary, percentile_summary
from repro.analysis.owlog import OWLevelStates, ow_level_states, ready_period_stats
from repro.analysis.sampler import SamplerLog, SlurmSampler
from repro.api.components import LengthSetLike, resolve_length_set
from repro.api.registry import component
from repro.api.stack import Probe, StackContext


# ---------------------------------------------------------------------------
# slurm-sampler


@dataclass
class SamplerArtifact:
    """Slurm-level perspective: the poll log plus derived summaries.

    The summaries are computed from the log's streaming aggregates; the
    per-sample count arrays are exposed lazily (they re-scan the
    retained history on access, and raise a clear error when the
    sampler ran with ``history=false``).
    """

    log: SamplerLog
    slurm_workers: PercentileSummary
    available_workers: PercentileSummary
    slurm_used_share: float
    zero_available_share: float

    @property
    def whisk_counts(self) -> np.ndarray:
        return self.log.whisk_counts()

    @property
    def available_counts(self) -> np.ndarray:
        return self.log.available_counts()

    @property
    def idle_counts(self) -> np.ndarray:
        return self.log.idle_counts()


@dataclass
class FederatedSamplerArtifact:
    """Per-member sampler views (federated stacks, N > 1)."""

    per_cluster: Dict[str, SamplerArtifact]

    @property
    def log(self) -> SamplerLog:
        """The primary member's log (single-cluster compatibility)."""
        return next(iter(self.per_cluster.values())).log


def _sampler_artifact(log: SamplerLog) -> SamplerArtifact:
    # Metrics come from the log's streaming aggregates — no history
    # re-scan.  Integer sums/means and histogram-reconstructed
    # percentiles are bit-equal to the old full-array pass, which the
    # REPRO_VERIFY_METRICS=1 mode asserts below.
    whisk = log.whisk_series
    available = log.available_series
    total_available = float(available.total)
    artifact = SamplerArtifact(
        log=log,
        slurm_workers=whisk.summary(),
        available_workers=available.summary(),
        slurm_used_share=(
            float(whisk.total) / total_available if total_available else 0.0
        ),
        zero_available_share=available.zero_share,
    )
    if os.environ.get("REPRO_VERIFY_METRICS") == "1":
        if log.samples:
            _verify_sampler_metrics(artifact, log)
        elif len(log):
            # Verification was *requested* but the history it re-scans
            # was discarded — failing loudly beats silently skipping the
            # check the caller asked for.
            raise RuntimeError(
                "REPRO_VERIFY_METRICS=1 needs the per-sample history to "
                "re-scan, but this sampler ran with history=false; re-run "
                "with the slurm-sampler option history=true or unset "
                "REPRO_VERIFY_METRICS"
            )
    return artifact


def _verify_sampler_metrics(artifact: SamplerArtifact, log: SamplerLog) -> None:
    """Exact re-scan verification of the streaming sampler metrics."""
    whisk_counts = log.whisk_counts()
    available_counts = log.available_counts()
    total_available = float(available_counts.sum())
    expected = {
        "slurm_workers": percentile_summary(whisk_counts),
        "available_workers": percentile_summary(available_counts),
        "slurm_used_share": (
            float(whisk_counts.sum()) / total_available if total_available else 0.0
        ),
        "zero_available_share": float(np.mean(available_counts == 0)),
    }
    actual = {
        "slurm_workers": artifact.slurm_workers,
        "available_workers": artifact.available_workers,
        "slurm_used_share": artifact.slurm_used_share,
        "zero_available_share": artifact.zero_available_share,
    }
    if actual != expected:
        raise AssertionError(
            "streaming sampler metrics diverged from the exact re-scan:\n"
            f"  streaming: {actual}\n  re-scan:   {expected}"
        )


class SlurmSamplerProbe(Probe):
    """One poller per federation member; merged + per-member metrics."""

    def __init__(self, samplers: Dict[str, SlurmSampler]) -> None:
        self.samplers = samplers

    def finish(self, ctx: StackContext) -> None:
        for sampler in self.samplers.values():
            sampler.stop()

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        per_cluster = {
            cid: _sampler_artifact(sampler.log)
            for cid, sampler in self.samplers.items()
        }
        if len(per_cluster) == 1:
            artifact = next(iter(per_cluster.values()))
            metrics = {
                "coverage": artifact.slurm_used_share,
                "avg_whisk_nodes": artifact.slurm_workers.avg,
                "avg_available_nodes": artifact.available_workers.avg,
                "zero_available_share": artifact.zero_available_share,
            }
            return metrics, artifact
        # Federated view: whisk/available surfaces add across members;
        # sample counts differ per member (independent latency jitter),
        # so shares aggregate over the union of samples.
        whisk_total = sum(
            float(a.log.whisk_series.total) for a in per_cluster.values()
        )
        avail_total = sum(
            float(a.log.available_series.total) for a in per_cluster.values()
        )
        # No fleet-level zero_available_share: member samples are not
        # time-aligned, so "share of time the whole fleet had zero
        # capacity" is not computable — reusing the single-cluster key
        # for anything else would silently change its meaning.
        metrics = {
            "coverage": whisk_total / avail_total if avail_total else 0.0,
            "avg_whisk_nodes": sum(
                a.slurm_workers.avg for a in per_cluster.values()
            ),
            "avg_available_nodes": sum(
                a.available_workers.avg for a in per_cluster.values()
            ),
        }
        for cid, artifact in per_cluster.items():
            metrics[f"coverage@{cid}"] = artifact.slurm_used_share
            metrics[f"avg_whisk_nodes@{cid}"] = artifact.slurm_workers.avg
            metrics[f"avg_available_nodes@{cid}"] = artifact.available_workers.avg
            metrics[f"zero_available_share@{cid}"] = artifact.zero_available_share
        return metrics, FederatedSamplerArtifact(per_cluster=per_cluster)


@component("probe", "slurm-sampler", help="Slurm-level polling (Sec. IV-A)")
def slurm_sampler_probe(
    ctx: StackContext,
    pause: float = 10.0,
    whisk_partition: str = "whisk",
    history: bool = True,
) -> SlurmSamplerProbe:
    """``history=False`` keeps only the streaming aggregates — O(1)
    memory however long the run, at the cost of the per-sample series
    and of any probe that packs the sampled intervals (coverage)."""
    samplers = {
        slurm.cluster_id: SlurmSampler(
            ctx.env,
            slurm,
            ctx.member_stream("sampler", slurm.cluster_id),
            pause=pause,
            whisk_partition=whisk_partition,
            keep_history=history,
        )
        for slurm in ctx.system.clusters.values()
    }
    return SlurmSamplerProbe(samplers)


# ---------------------------------------------------------------------------
# coverage (clairvoyant upper bound)


@dataclass
class CoverageArtifact:
    """Simulation perspective: the clairvoyant packing of the same surface."""

    simulation: CoverageResult
    warmup: float
    #: per-member packings (federated stacks only)
    per_cluster: Dict[str, CoverageResult] = field(default_factory=dict)


class CoverageProbe(Probe):
    """Clairvoyant interval packing — the one probe that *cannot* run
    from streaming aggregates (it replays the sampled intervals).  With
    ``missing_history="error"`` (default) a history-free sampler is a
    loud, pointed failure; ``missing_history="skip"`` degrades
    gracefully instead, contributing no metrics, so one probe set can
    serve both exact small runs and O(1)-memory trace-scale runs."""

    def __init__(
        self,
        length_set: LengthSetLike,
        warmup: float,
        source: str,
        missing_history: str = "error",
    ) -> None:
        if missing_history not in ("error", "skip"):
            raise ValueError(
                "coverage option missing_history must be 'error' or 'skip', "
                f"got {missing_history!r}"
            )
        self.length_set = resolve_length_set(length_set)
        self.warmup = warmup
        self.source = source
        self.missing_history = missing_history

    @staticmethod
    def _has_history(log) -> bool:
        return bool(log.samples) or not len(log)

    def _pack(self, log, horizon: float) -> CoverageResult:
        if not self._has_history(log):
            raise ValueError(
                "coverage probe needs the sampler's per-sample history to "
                "pack availability intervals, but the slurm-sampler ran "
                "with history=false (declare coverage with "
                "missing_history=skip to degrade gracefully)"
            )
        available = intervals_by_node(log.samples, "available", end_time=horizon)
        return CoverageSimulator(warmup=self.warmup).run(
            available, self.length_set, horizon=horizon
        )

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        sampler = ctx.artifacts.get(self.source)
        if sampler is None:
            raise ValueError(
                f"coverage probe needs the {self.source!r} probe declared "
                "before it (it packs the sampled availability surface)"
            )
        if self.missing_history == "skip":
            logs = (
                [m.log for m in sampler.per_cluster.values()]
                if isinstance(sampler, FederatedSamplerArtifact)
                else [sampler.log]
            )
            if not all(self._has_history(log) for log in logs):
                return {}, None
        if isinstance(sampler, FederatedSamplerArtifact):
            per_cluster = {
                cid: self._pack(member.log, ctx.horizon)
                for cid, member in sampler.per_cluster.items()
            }
            # Surfaces are node-seconds, so they add across members.
            total = sum(r.total_surface for r in per_cluster.values())
            ready = sum(r.ready_surface for r in per_cluster.values())
            warmup = sum(r.warmup_surface for r in per_cluster.values())
            metrics = {
                "sim_ready_share": ready / total if total else 0.0,
                "sim_used_share": (ready + warmup) / total if total else 0.0,
            }
            for cid, result in per_cluster.items():
                metrics[f"sim_ready_share@{cid}"] = result.ready_share
                metrics[f"sim_used_share@{cid}"] = result.used_share
            primary = next(iter(per_cluster.values()))
            return metrics, CoverageArtifact(
                simulation=primary, warmup=self.warmup, per_cluster=per_cluster
            )
        simulation = self._pack(sampler.log, ctx.horizon)
        metrics = {
            "sim_ready_share": simulation.ready_share,
            "sim_used_share": simulation.used_share,
        }
        return metrics, CoverageArtifact(simulation=simulation, warmup=self.warmup)


@component(
    "probe", "coverage", help="clairvoyant coverage bound over the sampled surface"
)
def coverage_probe(
    ctx: StackContext,
    length_set: LengthSetLike = "A1",
    warmup: float = 20.0,
    source: str = "slurm-sampler",
    missing_history: str = "error",
) -> CoverageProbe:
    return CoverageProbe(
        length_set=length_set,
        warmup=warmup,
        source=source,
        missing_history=missing_history,
    )


# ---------------------------------------------------------------------------
# ow-log (OpenWhisk-level pilot timelines)


@dataclass
class OWLogArtifact:
    """OW-level perspective: pilot-timeline state accounting."""

    ow: OWLevelStates
    ready_periods: Dict[str, float]
    timelines: list = field(default_factory=list)


class OWLogProbe(Probe):
    def __init__(self, step: float) -> None:
        self.step = step

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        timelines = [
            t
            for t in ctx.system.pilot_timelines
            if t.job_started_at < ctx.horizon
        ]
        ow = ow_level_states(timelines, ctx.horizon, step=self.step)
        ready_periods = ready_period_stats(timelines)
        metrics = {
            "avg_healthy_invokers": ow.healthy.avg,
            "ready_period_median_s": ready_periods.get("median", float("nan")),
            "outage_total_s": ow.total_outage(),
            "longest_outage_s": ow.longest_outage(),
        }
        artifact = OWLogArtifact(
            ow=ow, ready_periods=ready_periods, timelines=timelines
        )
        return metrics, artifact


@component("probe", "ow-log", help="OpenWhisk-level worker-state accounting")
def ow_log_probe(ctx: StackContext, step: float = 10.0) -> OWLogProbe:
    return OWLogProbe(step=step)


# ---------------------------------------------------------------------------
# gatling-report (client-level perspective)


class GatlingReportProbe(Probe):
    def __init__(self, source: str) -> None:
        self.source = source

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        client = ctx.handles.get(self.source)
        if client is None:
            raise ValueError(
                f"gatling-report probe found no {self.source!r} workload handle"
            )
        report = client.report
        metrics = {
            "requests_total": float(report.total),
            "accepted_share": report.invoked_share,
            "success_of_accepted_share": report.success_share_of_invoked,
            "median_response_s": report.response_time_percentile(50),
        }
        return metrics, report


@component("probe", "gatling-report", help="client-level request outcomes")
def gatling_report_probe(
    ctx: StackContext, source: str = "gatling"
) -> GatlingReportProbe:
    return GatlingReportProbe(source=source)


# ---------------------------------------------------------------------------
# stream-report (streaming-injector outcomes, O(1) memory)


class StreamReportProbe(Probe):
    """Metrics from a :class:`~repro.workloads.streaming.StreamReport`.

    The streaming counterpart of ``gatling-report``: every metric comes
    from running aggregates, so the probe works unchanged at trace
    scale.  Metric keys carry a ``stream_`` prefix to compose cleanly
    next to a gatling probe in the same stack.
    """

    def __init__(self, source: str) -> None:
        self.source = source

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        client = ctx.handles.get(self.source)
        if client is None:
            raise ValueError(
                f"stream-report probe found no {self.source!r} workload handle"
            )
        report = client.report
        return report.metrics(), report


@component("probe", "stream-report", help="streaming-injector request outcomes")
def stream_report_probe(
    ctx: StackContext, source: str = "faas-stream"
) -> StreamReportProbe:
    return StreamReportProbe(source=source)


# ---------------------------------------------------------------------------
# kernel-stats (simulation-kernel observability)


class KernelStatsProbe(Probe):
    def __init__(self, probe) -> None:
        self.probe = probe
        self.stats = None

    def finish(self, ctx: StackContext) -> None:
        self.stats = self.probe.stop()

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        stats = self.stats
        metrics = {
            "kernel_events_processed": float(stats.events_processed),
            "kernel_peak_queue_depth": float(stats.peak_queue_depth),
            #: wall-clock throughput — observability, not reproducible
            "kernel_events_per_sec": float(stats.events_per_sec),
        }
        return metrics, stats


@component("probe", "kernel-stats", help="simulation-kernel event counters")
def kernel_stats_probe(ctx: StackContext) -> KernelStatsProbe:
    from repro.bench.instrument import KernelProbe

    return KernelStatsProbe(KernelProbe().start())


# ---------------------------------------------------------------------------
# accounting (sacct-style prime-workload invasiveness)


class AccountingProbe(Probe):
    def __init__(self, partition: str) -> None:
        self.partition = partition

    def _partition_metrics(
        self, accounts, suffix: str = ""
    ) -> Dict[str, float]:
        metrics: Dict[str, float] = {}
        prime = accounts.get(self.partition)
        if prime is not None:
            metrics = {
                f"prime_jobs_total{suffix}": float(prime.jobs_total),
                f"prime_mean_wait_s{suffix}": prime.mean_wait,
                f"prime_median_wait_s{suffix}": prime.median_wait,
                f"prime_node_hours{suffix}": prime.node_hours,
            }
        whisk = accounts.get("whisk")
        if whisk is not None:
            metrics[f"whisk_node_hours{suffix}"] = whisk.node_hours
        return metrics

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        from repro.cluster.accounting import summarize

        federation = ctx.system.federation
        if federation is not None and len(federation) > 1:
            # Fleet-wide headline metrics over the merged accounting,
            # plus the same keys per member with an ``@<id>`` suffix.
            per_cluster = federation.summarize()
            metrics = self._partition_metrics(federation.summarize_merged())
            for cid, accounts in per_cluster.items():
                metrics.update(self._partition_metrics(accounts, f"@{cid}"))
            return metrics, per_cluster
        accounts = summarize(ctx.system.slurm)
        return self._partition_metrics(accounts), accounts


@component("probe", "accounting", help="sacct-style per-partition job accounting")
def accounting_probe(ctx: StackContext, partition: str = "main") -> AccountingProbe:
    return AccountingProbe(partition=partition)


# ---------------------------------------------------------------------------
# loadbalancer-stats (warm-container routing quality)


class LoadBalancerStatsProbe(Probe):
    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        invokers = ctx.handles.get("invokers") or ctx.system.invokers
        if invokers:
            counts = [
                (inv.invoker_id, inv.pool.cold_starts, inv.pool.warm_hits)
                for inv in invokers
            ]
        else:
            # Pilot supplies: each timeline carries its invoker's final stats.
            counts = [
                (t.invoker_id, t.stats.cold_starts, t.stats.warm_hits)
                for t in ctx.system.pilot_timelines
                if t.stats is not None
            ]
        if not counts:
            raise ValueError(
                "loadbalancer-stats probe found no invokers (static fleet "
                "or finished pilot jobs)"
            )
        cold = sum(c for _id, c, _w in counts)
        warm = sum(w for _id, _c, w in counts)
        metrics = {
            "warm_hits": float(warm),
            "cold_starts": float(cold),
            "warm_ratio": warm / max(warm + cold, 1),
        }
        if ctx.system.is_federated:
            by_cluster: Dict[str, Dict[str, int]] = {}
            for timeline in ctx.system.pilot_timelines:
                if timeline.stats is None or not timeline.cluster_id:
                    continue
                bucket = by_cluster.setdefault(
                    timeline.cluster_id, {"cold": 0, "warm": 0}
                )
                bucket["cold"] += timeline.stats.cold_starts
                bucket["warm"] += timeline.stats.warm_hits
            for cid, bucket in by_cluster.items():
                metrics[f"warm_ratio@{cid}"] = bucket["warm"] / max(
                    bucket["warm"] + bucket["cold"], 1
                )
        per_invoker = {
            invoker_id: {"cold_starts": c, "warm_hits": w}
            for invoker_id, c, w in counts
        }
        return metrics, per_invoker


@component("probe", "loadbalancer-stats", help="warm/cold container routing stats")
def loadbalancer_stats_probe(ctx: StackContext) -> LoadBalancerStatsProbe:
    return LoadBalancerStatsProbe()


# ---------------------------------------------------------------------------
# supply-stats (supply-controller accounting: submissions, churn, warmth)


class SupplyStatsProbe(Probe):
    """Per-member supply-loop accounting, fleet-merged when federated.

    Reads each member's :class:`~repro.hpcwhisk.job_manager.ManagerStats`
    and the pilot timelines: how much the controller submitted, how hard
    the queue cap truncated its plans, how fast pilots churn, and the
    warm/cold split of the containers those pilots served.  Policy
    diagnostics (EWMA levels, PID state, burst counters) are flattened
    in as ``supply_<name>`` gauges.
    """

    @staticmethod
    def _manager_metrics(manager, suffix: str = "") -> Dict[str, float]:
        stats = manager.stats
        metrics = {
            f"supply_submitted{suffix}": float(stats.submitted),
            f"supply_rounds{suffix}": float(stats.replenish_rounds),
            f"supply_truncated{suffix}": float(stats.truncated),
            f"supply_mean_queue_depth{suffix}": stats.mean_queue_depth,
        }
        for name, value in sorted(manager.policy.diagnostics().items()):
            metrics[f"supply_{name}{suffix}"] = float(value)
        return metrics

    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        managers = ctx.system.managers
        if not managers:
            raise ValueError(
                "supply-stats probe needs a pilot supply manager in the "
                "stack (supplies 'none'/'static' run without one)"
            )
        member_ids = list(ctx.system.clusters)
        started: Dict[str, int] = {cid: 0 for cid in member_ids}
        cold: Dict[str, int] = {cid: 0 for cid in member_ids}
        warm: Dict[str, int] = {cid: 0 for cid in member_ids}
        primary = member_ids[0]
        for timeline in ctx.system.pilot_timelines:
            cid = timeline.cluster_id or primary
            if timeline.job_started_at < ctx.horizon:
                started[cid] = started.get(cid, 0) + 1
            if timeline.stats is not None:
                cold[cid] = cold.get(cid, 0) + timeline.stats.cold_starts
                warm[cid] = warm.get(cid, 0) + timeline.stats.warm_hits
        horizon_hours = ctx.horizon / 3600.0

        def churn_metrics(cids, suffix: str = "") -> Dict[str, float]:
            pilots = sum(started[c] for c in cids)
            cold_total = sum(cold[c] for c in cids)
            warm_total = sum(warm[c] for c in cids)
            return {
                f"pilots_started{suffix}": float(pilots),
                f"pilot_churn_per_h{suffix}": pilots / horizon_hours,
                f"supply_cold_starts{suffix}": float(cold_total),
                f"supply_warm_hits{suffix}": float(warm_total),
                f"cold_start_rate{suffix}": cold_total
                / max(cold_total + warm_total, 1),
            }

        federated = len(managers) > 1
        if not federated:
            manager = managers[primary]
            metrics = {
                **self._manager_metrics(manager),
                **churn_metrics([primary]),
            }
            return metrics, {primary: manager.stats}
        # Fleet view: submissions/rounds/churn add across members; the
        # mean queue depth averages over every member's rounds; policy
        # diagnostics are member-local state and appear only suffixed.
        all_depths = [
            depth
            for manager in managers.values()
            for depth in manager.stats.queue_depths
        ]
        metrics = {
            "supply_submitted": float(
                sum(m.stats.submitted for m in managers.values())
            ),
            "supply_rounds": float(
                sum(m.stats.replenish_rounds for m in managers.values())
            ),
            "supply_truncated": float(
                sum(m.stats.truncated for m in managers.values())
            ),
            "supply_mean_queue_depth": (
                sum(all_depths) / len(all_depths) if all_depths else 0.0
            ),
            **churn_metrics(member_ids),
        }
        for cid, manager in managers.items():
            metrics.update(self._manager_metrics(manager, f"@{cid}"))
            metrics.update(churn_metrics([cid], f"@{cid}"))
        return metrics, {cid: m.stats for cid, m in managers.items()}


@component(
    "probe",
    "supply-stats",
    help="supply-controller accounting (submissions, churn, cold starts)",
)
def supply_stats_probe(ctx: StackContext) -> SupplyStatsProbe:
    return SupplyStatsProbe()


# ---------------------------------------------------------------------------
# federation-stats (cross-cluster routing accounting)


class FederationStatsProbe(Probe):
    def collect(self, ctx: StackContext) -> Tuple[Dict[str, float], Any]:
        controller = ctx.system.controller
        if controller is None:
            raise ValueError("federation-stats probe needs middleware in the stack")
        member_ids = list(ctx.system.clusters)
        routed = {
            cid: controller.routed_counts.get(cid, 0) for cid in member_ids
        }
        total = sum(controller.routed_counts.values())
        metrics: Dict[str, float] = {
            "fed_clusters": float(len(member_ids)),
            "fed_routed_total": float(total),
            "fed_rejected_503": float(controller.unavailable_count),
        }
        for cid in member_ids:
            metrics[f"fed_routed@{cid}"] = float(routed[cid])
            metrics[f"fed_routed_share@{cid}"] = (
                routed[cid] / total if total else 0.0
            )
        artifact = {
            "routed_counts": dict(controller.routed_counts),
            "router": type(ctx.system.router).__name__
            if ctx.system.router is not None
            else None,
            "healthy_by_cluster": {
                cid: len(pool)
                for cid, pool in controller.healthy_by_cluster().items()
            },
        }
        return metrics, artifact


@component(
    "probe",
    "federation-stats",
    help="per-cluster activation routing + 503 accounting",
)
def federation_stats_probe(ctx: StackContext) -> FederationStatsProbe:
    return FederationStatsProbe()
