"""Built-in cluster, supply, middleware, and workload components.

Each factory mirrors the exact wiring the hand-written experiments used
before the composable API existed — same constructor arguments, same
named random streams, same attach order — so a stack assembled from
these components is byte-identical to the historical code path (the
golden-trace suite enforces this for ``day`` and ``fig3``).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Union

import numpy as np

from repro.api.registry import component
from repro.api.stack import MiddlewareBuild, StackContext, SupplyBuild
from repro.cluster.backfill import SchedulerConfig
from repro.cluster.job import JobSpec
from repro.cluster.slurmctld import SlurmConfig
from repro.faas.functions import FunctionDef, sleep_functions
from repro.faas.invoker import Invoker
from repro.faas.loadbalancer import HashAffinity, LeastLoaded, RoundRobin
from repro.faas.router import AffinityFirst, Failover, WeightedIdle
from repro.hpcwhisk.config import SupplyModel
from repro.hpcwhisk.lengths import JOB_LENGTH_SETS, JobLengthSet
from repro.sim import Interrupt
from repro.supply import PidGains, make_policy
from repro.workloads.gatling import GatlingClient
from repro.workloads.hpc_trace import trace_to_prime_jobs
from repro.workloads.streaming import (
    FaaSStreamClient,
    FixedDurationModel,
    build_stream_source,
)
from repro.workloads.idleness import IdlenessTraceGenerator

LengthSetLike = Union[str, JobLengthSet, Sequence[float]]


def resolve_length_set(value: LengthSetLike) -> JobLengthSet:
    """Accept a catalogue name ("A1"), a custom minute list, or an instance."""
    if isinstance(value, JobLengthSet):
        return value
    if isinstance(value, str):
        try:
            return JOB_LENGTH_SETS[value]
        except KeyError:
            raise KeyError(
                f"unknown length set {value!r}; known: {sorted(JOB_LENGTH_SETS)}"
            ) from None
    minutes = []
    for v in value:
        if float(v) != int(v):
            raise ValueError(f"length-set minutes must be whole, got {v!r}")
        minutes.append(int(v))
    return JobLengthSet("custom", tuple(minutes))


def _resolve_scheduler(
    scheduler: Union[SchedulerConfig, Mapping[str, Any], None]
) -> SchedulerConfig:
    if scheduler is None:
        return SchedulerConfig()
    if isinstance(scheduler, SchedulerConfig):
        return scheduler
    return SchedulerConfig(**dict(scheduler))


# ---------------------------------------------------------------------------
# cluster


@component("cluster", "slurm", help="simulated Slurm cluster (main + whisk partitions)")
def slurm_cluster(
    nodes: int = 16,
    node_cores: int = 24,
    node_memory_mb: int = 131072,
    kill_wait: float = 30.0,
    scheduler: Union[SchedulerConfig, Mapping[str, Any], None] = None,
    cluster_id: str = "",
) -> SlurmConfig:
    """``scheduler`` takes a :class:`SchedulerConfig` or a mapping of its
    fields (``bf_flex_interval``, ``max_flex_starts_per_pass``, …);
    ``cluster_id`` names the federation member ("" = positional
    ``c<index>`` in the stack's ``clusters`` list)."""
    return SlurmConfig(
        scheduler=_resolve_scheduler(scheduler),
        kill_wait=kill_wait,
        num_nodes=nodes,
        node_cores=node_cores,
        node_memory_mb=node_memory_mb,
        cluster_id=cluster_id,
    )


# ---------------------------------------------------------------------------
# supply


@component("supply", "fib", help="fixed-length pilot-job supply (Sec. III-D fib)")
def fib_supply(
    length_set: LengthSetLike = "A1",
    queue_per_length: int = 10,
    replenish_interval: float = 15.0,
    max_queued: int = 100,
) -> SupplyBuild:
    return SupplyBuild(
        whisk_kwargs={
            "supply_model": SupplyModel.FIB,
            "length_set": resolve_length_set(length_set),
            "queue_per_length": queue_per_length,
            "replenish_interval": replenish_interval,
            "max_queued": max_queued,
        }
    )


@component("supply", "var", help="flexible-length pilot-job supply (Sec. III-D var)")
def var_supply(
    var_queue_depth: int = 100,
    var_time_min: float = 120.0,
    var_time_max: float = 7200.0,
    replenish_interval: float = 15.0,
    max_queued: int = 100,
) -> SupplyBuild:
    return SupplyBuild(
        whisk_kwargs={
            "supply_model": SupplyModel.VAR,
            "var_queue_depth": var_queue_depth,
            "var_time_min": var_time_min,
            "var_time_max": var_time_max,
            "replenish_interval": replenish_interval,
            "max_queued": max_queued,
        }
    )


def _feedback_supply(
    policy_name: str,
    length_set: LengthSetLike,
    policy_options: Mapping[str, Any],
    replenish_interval: float,
    max_queued: int,
) -> SupplyBuild:
    """Shared wiring for the feedback controllers of :mod:`repro.supply`.

    The factory captures fully-resolved options and builds a **fresh**
    policy instance per call — ``build_federation`` calls it once per
    member, so controller state never leaks across clusters.
    """
    resolved_lengths = resolve_length_set(length_set)
    options = dict(policy_options)
    # Validate the options eagerly: a bad gain should fail at spec
    # resolution, not on the first replenishment round.
    make_policy(policy_name, resolved_lengths, **options)
    return SupplyBuild(
        whisk_kwargs={
            "policy_factory": lambda: make_policy(
                policy_name, resolved_lengths, **options
            ),
            "replenish_interval": replenish_interval,
            "max_queued": max_queued,
        }
    )


@component(
    "supply",
    "queue-aware",
    help="backlog-proportional pilot inventory (reactive feedback)",
)
def queue_aware_supply(
    base_depth: int = 4,
    backlog_gain: float = 0.5,
    max_depth: int = 50,
    job_minutes: int = 4,
    replenish_interval: float = 15.0,
    max_queued: int = 100,
) -> SupplyBuild:
    """Targets ``base_depth + backlog_gain * buffered-activations``
    queued pilots of ``job_minutes`` each, capped at ``max_depth``."""
    return _feedback_supply(
        "queue-aware",
        "A1",
        {
            "base_depth": base_depth,
            "backlog_gain": backlog_gain,
            "max_depth": max_depth,
            "job_minutes": job_minutes,
        },
        replenish_interval,
        max_queued,
    )


@component(
    "supply", "ewma", help="EWMA load forecast picks the pilot-job lengths"
)
def ewma_supply(
    length_set: LengthSetLike = "A1",
    alpha: float = 0.3,
    target_depth: int = 10,
    replenish_interval: float = 15.0,
    max_queued: int = 100,
) -> SupplyBuild:
    """Holds ``target_depth`` queued pilots whose length tracks an
    exponentially-smoothed invoker-busyness forecast (quiet system ->
    shortest class, saturated -> longest)."""
    return _feedback_supply(
        "ewma",
        length_set,
        {"alpha": alpha, "target_depth": target_depth},
        replenish_interval,
        max_queued,
    )


def resolve_gains(value: Union[PidGains, Mapping[str, Any], None]) -> PidGains:
    """Accept a :class:`~repro.supply.policies.PidGains` or a mapping of
    its fields (``kp``/``ki``/``kd``) — the YAML path sends mappings."""
    if value is None:
        return PidGains()
    if isinstance(value, PidGains):
        return value
    return PidGains(**dict(value))


@component(
    "supply", "pid", help="PID on idle-invoker count (anti-windup feedback)"
)
def pid_supply(
    target_idle: int = 2,
    gains: Union[PidGains, Mapping[str, Any]] = PidGains(),
    max_depth: int = 40,
    job_minutes: int = 4,
    replenish_interval: float = 15.0,
    max_queued: int = 100,
) -> SupplyBuild:
    """Error-feedback on spare invoker capacity: holds ``target_idle``
    idle invokers via a PID loop with conditional-integration
    anti-windup.  ``gains`` takes a
    :class:`~repro.supply.policies.PidGains` or a mapping of its fields
    (``kp``, ``ki``, ``kd``); ``None`` uses the default gains."""
    return _feedback_supply(
        "pid",
        "A1",
        {
            "target_idle": target_idle,
            "gains": resolve_gains(gains),
            "max_depth": max_depth,
            "job_minutes": job_minutes,
        },
        replenish_interval,
        max_queued,
    )


@component(
    "supply", "hybrid", help="fib floor + reactive short-job burst on backlog"
)
def hybrid_supply(
    length_set: LengthSetLike = "A1",
    floor_per_length: int = 2,
    burst_threshold: int = 4,
    burst_size: int = 8,
    burst_minutes: int = 2,
    replenish_interval: float = 15.0,
    max_queued: int = 100,
) -> SupplyBuild:
    """A scaled-down fib inventory (``floor_per_length`` per class)
    guarantees baseline harvest; a burst of ``burst_size`` short pilots
    rides along whenever the activation backlog reaches
    ``burst_threshold``."""
    return _feedback_supply(
        "hybrid",
        length_set,
        {
            "floor_per_length": floor_per_length,
            "burst_threshold": burst_threshold,
            "burst_size": burst_size,
            "burst_minutes": burst_minutes,
        },
        replenish_interval,
        max_queued,
    )


@component("supply", "none", help="no worker supply (bare-cluster baselines)")
def no_supply() -> SupplyBuild:
    return SupplyBuild(with_manager=False, needs_middleware=False)


@component("supply", "static", help="always-on invoker fleet (no pilot jobs)")
def static_supply(invokers: int = 4) -> SupplyBuild:
    """A fixed fleet of registered invokers outside Slurm's control —
    isolates the middleware (load-balancer ablations) from supply churn."""
    if invokers < 1:
        raise ValueError("invokers must be >= 1")

    def post_build(ctx: StackContext) -> None:
        fleet = []
        member_ids = ctx.cluster_ids
        for index in range(invokers):
            invoker = Invoker(
                ctx.env,
                f"inv-{index}",
                f"n{index:04d}",
                ctx.system.broker,
                ctx.system.controller.registry,
                config=ctx.system.config.faas,
                rng=ctx.streams.stream(f"invoker-{index}"),
                # round-robin over the members so federated routing and
                # accounting see the fleet (all "c0" for N=1 stacks)
                cluster_id=member_ids[index % len(member_ids)],
            )
            fleet.append(invoker)

            def lifecycle(env, inv=invoker):
                yield from inv.register()
                try:
                    yield from inv.serve()
                except Interrupt:
                    yield from inv.drain()

            ctx.env.process(lifecycle(ctx.env))
        ctx.system.invokers.extend(fleet)
        ctx.handles["invokers"] = fleet

    return SupplyBuild(with_manager=False, post_build=post_build)


# ---------------------------------------------------------------------------
# middleware

_BALANCERS = {
    "hash-affinity": HashAffinity,
    "round-robin": RoundRobin,
    "least-loaded": LeastLoaded,
}


@component("middleware", "openwhisk", help="OpenWhisk-like controller + broker")
def openwhisk_middleware(
    balancer: Optional[str] = None,
    publish_latency: Optional[float] = None,
    activation_timeout: Optional[float] = None,
    health_check_interval: Optional[float] = None,
    ping_timeout: Optional[float] = None,
    ping_interval: Optional[float] = None,
    max_containers: Optional[int] = None,
    buffer_limit: Optional[int] = None,
    system_overhead: Optional[float] = None,
    overhead_sigma: Optional[float] = None,
    use_fast_lane: Optional[bool] = None,
    interrupt_running: Optional[bool] = None,
    max_retries: Optional[int] = None,
    record_history: Optional[bool] = None,
) -> MiddlewareBuild:
    """``None`` options fall back to the :class:`FaaSConfig` defaults;
    ``balancer`` picks hash-affinity (default), round-robin, or
    least-loaded routing."""
    load_balancer = None
    if balancer is not None:
        try:
            load_balancer = _BALANCERS[balancer]()
        except KeyError:
            raise KeyError(
                f"unknown balancer {balancer!r}; known: {sorted(_BALANCERS)}"
            ) from None
    faas_kwargs = {
        name: value
        for name, value in {
            "publish_latency": publish_latency,
            "activation_timeout": activation_timeout,
            "health_check_interval": health_check_interval,
            "ping_timeout": ping_timeout,
            "ping_interval": ping_interval,
            "max_containers": max_containers,
            "buffer_limit": buffer_limit,
            "system_overhead": system_overhead,
            "overhead_sigma": overhead_sigma,
            "use_fast_lane": use_fast_lane,
            "interrupt_running": interrupt_running,
            "max_retries": max_retries,
            "record_history": record_history,
        }.items()
        if value is not None
    }
    return MiddlewareBuild(faas_kwargs=faas_kwargs, load_balancer=load_balancer)


# ---------------------------------------------------------------------------
# routers (cross-cluster activation routing, federated stacks)


@component(
    "router",
    "weighted-idle",
    help="route to clusters proportionally to their healthy workers",
)
def weighted_idle_router() -> WeightedIdle:
    """The run's ``router`` random stream is bound during assembly, so
    weighted draws are reproducible per stack seed."""
    return WeightedIdle()


@component(
    "router",
    "affinity-first",
    help="hash functions to a home cluster, fail over in sorted order",
)
def affinity_first_router() -> AffinityFirst:
    return AffinityFirst()


@component(
    "router",
    "failover",
    help="all traffic to the first healthy member, in declaration order",
)
def failover_router() -> Failover:
    return Failover()


# ---------------------------------------------------------------------------
# workloads


@component(
    "workload",
    "idleness-trace",
    help="prime HPC jobs replayed from a generated idleness trace",
)
def idleness_trace_workload(
    ctx: StackContext,
    nodes: Optional[int] = None,
    intensity_scale: float = 1.0,
    length_scale: float = 1.0,
    outage_share: Optional[float] = None,
    min_intensity: float = 0.0,
    diurnal_amplitude: float = 0.0,
    diurnal_phase: float = 0.0,
    horizon: Optional[float] = None,
    cluster: Optional[str] = None,
) -> Dict[str, Any]:
    """Generates an idleness trace (stream ``trace``), converts its busy
    complement to pinned prime jobs (stream ``lead``), and submits them.

    ``cluster`` targets one federation member; with ``None`` every
    member gets its own independently-generated trace (streams
    ``trace@<id>``/``lead@<id>`` beyond the primary), sized to that
    member's node count unless ``nodes`` pins one size for all.
    """
    span = horizon if horizon is not None else ctx.horizon
    targets = [cluster] if cluster is not None else ctx.cluster_ids or [None]
    per_cluster: Dict[str, Dict[str, Any]] = {}
    for target in targets:
        slurm = ctx.cluster(target)
        num_nodes = nodes if nodes is not None else slurm.config.num_nodes
        trace = IdlenessTraceGenerator(
            ctx.member_stream("trace", slurm.cluster_id),
            num_nodes=num_nodes,
            intensity_scale=intensity_scale,
            length_scale=length_scale,
            outage_share=outage_share,
            min_intensity=min_intensity,
            diurnal_amplitude=diurnal_amplitude,
            diurnal_phase=diurnal_phase,
        ).generate(span)
        workload = trace_to_prime_jobs(
            trace, ctx.member_stream("lead", slurm.cluster_id)
        )
        workload.submit_all(ctx.env, slurm)
        per_cluster[slurm.cluster_id] = {"trace": trace, "workload": workload}
    if len(per_cluster) == 1:
        return next(iter(per_cluster.values()))
    return {"per_cluster": per_cluster}


@component(
    "workload", "gatling", help="constant-rate load client over sleep functions"
)
def gatling_workload(
    ctx: StackContext,
    qps: float = 10.0,
    functions: int = 100,
    duration: float = 0.010,
    horizon: Optional[float] = None,
) -> GatlingClient:
    if ctx.system.controller is None:
        raise ValueError("the gatling workload needs middleware in the stack")
    deployed = sleep_functions(functions, duration)
    for function in deployed:
        ctx.system.controller.deploy(function)
    client = GatlingClient(
        ctx.env,
        ctx.system.client,
        [f.name for f in deployed],
        rate_per_second=qps,
        duration=duration,
        rng=ctx.streams.stream("gatling"),
    )
    client.start(horizon if horizon is not None else ctx.horizon)
    return client


def build_stream_plan(rng, cluster_ids, options: Mapping[str, Any]):
    """Functions + source for a ``faas-stream`` spec: the one code path.

    Both the unsharded component below and the sharded coordinator
    (:mod:`repro.shard`) turn a spec's options into ``(function defs,
    source)`` through this helper, with the same named stream — so the
    two execution modes consume the identical invocation sequence for
    the same seed.  Unknown options raise via
    :func:`~repro.workloads.streaming.build_stream_source`.
    """
    opts = dict(options)
    opts.pop("horizon", None)
    count = int(opts.pop("functions", 100))
    fn_duration = float(opts.pop("duration", 0.010))
    qps = float(opts.pop("qps", 10.0))
    region_shift = bool(opts.pop("region_shift", False))
    azure_durations = bool(opts.pop("azure_durations", True))
    deployed = sleep_functions(count, fn_duration)
    source = build_stream_source(
        rng,
        [f.name for f in deployed],
        qps,
        duration_model=(
            None if azure_durations else FixedDurationModel(fn_duration)
        ),
        regions=list(cluster_ids) if region_shift else None,
        **opts,
    )
    return deployed, source


@component(
    "workload",
    "faas-stream",
    help="streaming open-loop FaaS load (lazy source + modulators)",
)
def faas_stream_workload(
    ctx: StackContext,
    qps: float = 10.0,
    functions: int = 100,
    duration: float = 0.010,
    azure_durations: bool = True,
    horizon: Optional[float] = None,
    zipf_s: float = 1.1,
    diurnal_amplitude: float = 0.0,
    diurnal_period: float = 86_400.0,
    diurnal_phase: float = 0.0,
    burst_at: Optional[float] = None,
    burst_duration: float = 300.0,
    burst_factor: float = 4.0,
    flash_at: Optional[float] = None,
    flash_magnitude: float = 9.0,
    flash_rise: float = 60.0,
    flash_decay: float = 600.0,
    region_shift: bool = False,
    region_period: float = 86_400.0,
    region_sharpness: float = 1.0,
) -> FaaSStreamClient:
    if ctx.system.controller is None:
        raise ValueError("the faas-stream workload needs middleware in the stack")
    deployed, source = build_stream_plan(
        ctx.streams.stream("stream"),
        ctx.cluster_ids,
        dict(
            qps=qps,
            functions=functions,
            duration=duration,
            azure_durations=azure_durations,
            zipf_s=zipf_s,
            diurnal_amplitude=diurnal_amplitude,
            diurnal_period=diurnal_period,
            diurnal_phase=diurnal_phase,
            burst_at=burst_at,
            burst_duration=burst_duration,
            burst_factor=burst_factor,
            flash_at=flash_at,
            flash_magnitude=flash_magnitude,
            flash_rise=flash_rise,
            flash_decay=flash_decay,
            region_shift=region_shift,
            region_period=region_period,
            region_sharpness=region_sharpness,
        ),
    )
    for function in deployed:
        ctx.system.controller.deploy(function)
    client = FaaSStreamClient(ctx.env, ctx.system.client, source)
    client.start(horizon if horizon is not None else ctx.horizon)
    return client


@component(
    "workload", "pinned-jobs", help="explicit prime jobs pinned to named nodes"
)
def pinned_jobs_workload(
    ctx: StackContext,
    jobs: Sequence[Mapping[str, Any]] = (),
    partition: str = "main",
    cluster: Optional[str] = None,
) -> list:
    """Each job is a mapping with ``name``, ``nodes`` (list of node
    names), ``start_min``, and ``end_min`` — the Fig 3 shape, YAML-able.
    ``cluster`` picks the federation member (default: the primary)."""
    slurm = ctx.cluster(cluster)
    submitted = []
    for job in jobs:
        nodes = tuple(job["nodes"])
        start_min = float(job["start_min"])
        end_min = float(job["end_min"])
        submitted.append(
            slurm.submit(
                JobSpec(
                    name=str(job["name"]),
                    num_nodes=len(nodes),
                    time_limit=(end_min - start_min) * 60.0,
                    actual_runtime=(end_min - start_min) * 60.0,
                    partition=partition,
                    required_nodes=nodes,
                    begin_time=start_min * 60.0,
                )
            )
        )
    return submitted


@component(
    "workload", "sebs", help="SeBS compute functions driven at a constant rate"
)
def sebs_workload(
    ctx: StackContext,
    qps: float = 1.0,
    graph_size: int = 12000,
    samples: int = 32,
    horizon: Optional[float] = None,
) -> GatlingClient:
    """Deploys the three compute-intensive SeBS functions (bfs, mst,
    pagerank) with warm durations drawn from the calibrated timing model
    (stream ``sebs``) and drives them open-loop (stream ``sebs-load``)."""
    from repro.workloads.sebs import model_invocations

    if ctx.system.controller is None:
        raise ValueError("the sebs workload needs middleware in the stack")
    model_rng = ctx.streams.stream("sebs")
    names = []
    for kernel in ("bfs", "mst", "pagerank"):
        times = model_invocations(kernel, samples, graph_size, model_rng)
        function = FunctionDef(
            name=f"sebs-{kernel}", duration=float(np.median(times))
        )
        ctx.system.controller.deploy(function)
        names.append(function.name)
    client = GatlingClient(
        ctx.env,
        ctx.system.client,
        names,
        rate_per_second=qps,
        duration=None,
        rng=ctx.streams.stream("sebs-load"),
    )
    client.start(horizon if horizon is not None else ctx.horizon)
    return client


@component(
    "workload", "hpc-jobs", help="free-standing sampled HPC jobs (Fig 2 population)"
)
def hpc_jobs_workload(
    ctx: StackContext,
    count: int = 100,
    max_width: Optional[int] = None,
    horizon: Optional[float] = None,
    cluster: Optional[str] = None,
) -> list:
    """Submits ``count`` population-sampled jobs (stream ``hpc-jobs``)
    with uniform arrival times over the horizon — a synthetic prime
    workload that is not pinned to an idleness trace.  ``cluster``
    picks the federation member (default: the primary)."""
    from repro.workloads.hpc_trace import JobPopulation

    slurm = ctx.cluster(cluster)
    rng = ctx.member_stream("hpc-jobs", slurm.cluster_id)
    span = horizon if horizon is not None else ctx.horizon
    cluster_nodes = slurm.config.num_nodes
    cap = max_width if max_width is not None else max(1, cluster_nodes // 4)
    sampled = JobPopulation(rng).sample(count)
    arrivals = np.sort(rng.uniform(0.0, span, size=count))
    specs = []
    for arrival, job in zip(arrivals, sampled):
        specs.append(
            (
                float(arrival),
                JobSpec(
                    name=f"pop-{len(specs)}",
                    num_nodes=min(max(1, job.width), cap),
                    time_limit=job.limit,
                    actual_runtime=min(job.runtime, job.limit),
                ),
            )
        )

    def driver():
        for arrival, spec in specs:
            if arrival > ctx.env.now:
                yield ctx.env.timeout(arrival - ctx.env.now)
            slurm.submit(spec)

    ctx.env.process(driver())
    return [spec for _arrival, spec in specs]


@component(
    "workload",
    "failover-window",
    help="whole-cluster outage: fail one member for a window, then restore",
)
def failover_window_workload(
    ctx: StackContext,
    cluster: Optional[str] = None,
    start: float = 0.0,
    duration: float = 600.0,
    restore: bool = True,
) -> Dict[str, Any]:
    """Takes every node of one federation member down at ``start`` and
    (optionally) restores them ``duration`` seconds later — the failover
    scenario's outage window.  ``cluster`` defaults to the *last*
    declared member (the one failover policies lean on least)."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    target = cluster if cluster is not None else ctx.cluster_ids[-1]
    slurm = ctx.cluster(target)

    def window():
        if start > ctx.env.now:
            yield ctx.env.timeout(start - ctx.env.now)
        for name in sorted(slurm.nodes):
            slurm.fail_node(name)
        yield ctx.env.timeout(duration)
        if restore:
            for name in sorted(slurm.nodes):
                slurm.restore_node(name)

    ctx.env.process(window())
    return {"cluster": target, "start": start, "duration": duration}
