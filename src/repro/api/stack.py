"""Declarative stack assembly: specs in, a wired simulation out.

A :class:`Stack` names one component per layer — cluster, supply,
middleware — plus any number of workloads and probes, each as a small
spec (component name + options).  ``Stack.run()`` resolves every spec
against the component registry, wires the same
:class:`~repro.hpcwhisk.deploy.HPCWhiskSystem` the hand-written
experiments build, attaches workloads then probes in declaration order,
advances the simulation, and returns a :class:`SimulationReport` whose
``metrics`` merge every probe's output.

The fifteen-line version of a new experiment::

    from repro.api import (ClusterSpec, ProbeSpec, Stack, SupplySpec,
                           WorkloadSpec)

    stack = Stack(
        cluster=ClusterSpec(nodes=64),
        supply=SupplySpec("var"),
        workloads=(
            WorkloadSpec("idleness-trace"),
            WorkloadSpec("gatling", qps=5.0),
        ),
        probes=(
            ProbeSpec("slurm-sampler"),
            ProbeSpec("ow-log"),
            ProbeSpec("gatling-report"),
        ),
        seed=42,
        horizon=3600.0,
    )
    report = stack.run()
    print(report.render())

Ordering is part of the contract: workloads attach before probes, both
in declaration order, and probes *collect* in declaration order too —
a probe may read the artifacts of probes declared before it (the
clairvoyant coverage probe consumes the Slurm sampler's log).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api.registry import COMPONENTS, ComponentRegistry, load_builtin_components
from repro.cluster.slurmctld import SlurmController
from repro.hpcwhisk.deploy import HPCWhiskSystem, build_federation
from repro.hpcwhisk.config import HPCWhiskConfig
from repro.sim import Environment, RandomStreams


class ComponentSpec:
    """One component choice: a registered name plus its options.

    Subclasses pin the component *kind*; options are validated against
    the factory's signature when the stack is built.  Specs are plain
    values — hashable, comparable, and cheap to construct::

        >>> SupplySpec("static", invokers=3)
        SupplySpec('static', invokers=3)
        >>> ClusterSpec().name          # subclasses carry the default
        'slurm'
        >>> SupplySpec("fib") == SupplySpec("fib")
        True
    """

    kind: str = ""
    default_name: str = ""

    def __init__(self, name: Optional[str] = None, **options: Any) -> None:
        self.name = name or self.default_name
        if not self.name:
            raise ValueError(f"{type(self).__name__} needs a component name")
        self.options: Dict[str, Any] = dict(options)

    def validate(self, registry: ComponentRegistry = COMPONENTS) -> None:
        """Check the name is registered and every option is a parameter."""
        comp = registry.get(self.kind, self.name)
        known = set(comp.param_names())
        unknown = set(self.options) - known
        if unknown:
            raise KeyError(
                f"{self.kind} component {self.name!r} has no option(s) "
                f"{sorted(unknown)}; declared: {sorted(known)}"
            )

    def __repr__(self) -> str:
        options = ", ".join(f"{k}={v!r}" for k, v in sorted(self.options.items()))
        return f"{type(self).__name__}({self.name!r}{', ' if options else ''}{options})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ComponentSpec)
            and self.kind == other.kind
            and self.name == other.name
            and self.options == other.options
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.name, tuple(sorted(self.options.items()))))


class ClusterSpec(ComponentSpec):
    """The simulated cluster (default: the Slurm cluster)."""

    kind = "cluster"
    default_name = "slurm"


class SupplySpec(ComponentSpec):
    """The worker supply: pilot-job model, static fleet, or none."""

    kind = "supply"
    default_name = "fib"


class MiddlewareSpec(ComponentSpec):
    """The FaaS middleware (OpenWhisk-like controller + broker)."""

    kind = "middleware"
    default_name = "openwhisk"


class RouterSpec(ComponentSpec):
    """The cross-cluster activation routing policy (federations)."""

    kind = "router"
    default_name = "failover"


class WorkloadSpec(ComponentSpec):
    """One traffic source: prime HPC jobs, load clients, …"""

    kind = "workload"


class ProbeSpec(ComponentSpec):
    """One measurement attached to the run."""

    kind = "probe"


# ---------------------------------------------------------------------------
# build-time component outputs


@dataclass
class SupplyBuild:
    """What a supply component contributes to system assembly."""

    #: HPCWhiskConfig overrides (supply_model, length_set, queue depths…)
    whisk_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: build the pilot-job manager (fib/var); False for static/none
    with_manager: bool = True
    #: the supply needs the FaaS middleware to exist
    needs_middleware: bool = True
    #: called after system assembly (static fleets spawn invokers here)
    post_build: Optional[Callable[["StackContext"], None]] = None


@dataclass
class MiddlewareBuild:
    """What a middleware component contributes to system assembly."""

    faas_kwargs: Dict[str, Any] = field(default_factory=dict)
    load_balancer: Any = None


class Probe:
    """Base class for probe components.

    The factory attaches any live instrumentation (processes, counters)
    and returns a ``Probe``; the builder calls :meth:`finish` right
    after the simulation stops (before the supply manager is stopped)
    and :meth:`collect` once the run is fully torn down.
    """

    #: set by the builder to the probe's registered component name
    name: str = ""

    def finish(self, ctx: "StackContext") -> None:  # pragma: no cover - default
        """Stop live instrumentation (called once, after ``env.run``)."""

    def collect(self, ctx: "StackContext") -> Tuple[Dict[str, float], Any]:
        """Return ``(metrics, artifact)`` for the report."""
        return {}, None


@dataclass
class StackContext:
    """Everything components can see while a stack is being run."""

    stack: "Stack"
    env: Environment
    streams: RandomStreams
    system: HPCWhiskSystem
    horizon: float
    #: live handles left by workloads/supplies ("gatling" -> client, …)
    handles: Dict[str, Any] = field(default_factory=dict)
    #: probe artifacts, filled in declaration order during collection
    artifacts: Dict[str, Any] = field(default_factory=dict)
    #: merged probe metrics, filled during collection
    metrics: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # federation helpers (N=1 stacks see their single cluster)
    # ------------------------------------------------------------------
    @property
    def cluster_ids(self) -> List[str]:
        """Member cluster ids in declaration order."""
        return list(self.system.clusters)

    def cluster(self, cluster_id: Optional[str] = None) -> SlurmController:
        """One member controller (default: the primary cluster)."""
        if cluster_id is None:
            return self.system.slurm
        try:
            return self.system.clusters[cluster_id]
        except KeyError:
            raise KeyError(
                f"unknown cluster {cluster_id!r}; members: {self.cluster_ids}"
            ) from None

    def member_stream(self, base: str, cluster_id: str):
        """The named random stream for one member's component.

        Mirrors the deploy-layer convention: the primary member keeps
        the historical unsuffixed stream name, later members get
        ``base@<cluster_id>`` — so N=1 stacks stay byte-identical.
        A shard stack (one member standing in for federation member
        *i*) uses member *i*'s federated stream names, keeping member
        dynamics seed-identical across shard counts.
        """
        shard_index = self.stack.shard_member_index
        if shard_index is not None:
            if shard_index == 0:
                return self.streams.stream(base)
            return self.streams.stream(f"{base}@{cluster_id}")
        ids = self.cluster_ids
        if not ids or cluster_id == ids[0]:
            return self.streams.stream(base)
        return self.streams.stream(f"{base}@{cluster_id}")


@dataclass
class SimulationReport:
    """Uniform result of one composed run.

    ``metrics`` is the union of every probe's flat ``name -> float``
    output — the same shape :class:`~repro.scenarios.spec.ScenarioResult`
    exposes, so composed runs aggregate, persist, and compare exactly
    like registered scenarios.  ``artifacts`` holds each probe's rich
    in-process object under the probe's component name.
    """

    name: str
    seed: int
    horizon: float
    metrics: Dict[str, float]
    artifacts: Dict[str, Any]
    #: live system handles (None for sharded runs — workers have exited)
    system: Optional[HPCWhiskSystem]

    def render(self) -> str:
        from repro.analysis.report import render_kv

        return render_kv(f"{self.name} — composed-stack report", self.metrics)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view (identity + metrics, no artifacts)."""
        return {
            "stack": self.name,
            "seed": self.seed,
            "horizon": self.horizon,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


@dataclass(frozen=True)
class Stack:
    """One declarative experiment: components + seed + horizon.

    A stack hosts one cluster (``cluster``) or a whole federation
    (``clusters`` — a list of :class:`ClusterSpec` members plus an
    optional ``router`` policy).  With ``clusters`` given, every member
    gets its own supply manager and pilot fleet built from the one
    ``supply`` spec, and the ``router`` steers activations across
    members above each cluster's load balancer.

    A stack is pure data until :meth:`build`/:meth:`run` — composing
    one touches no registry and draws no randomness::

        >>> stack = Stack(
        ...     name="demo",
        ...     supply=SupplySpec("static", invokers=2),
        ...     workloads=(WorkloadSpec("faas-stream", qps=2.0),),
        ...     seed=7,
        ...     horizon=60.0,
        ... )
        >>> [spec.kind for spec in stack.specs()]
        ['cluster', 'supply', 'middleware', 'workload']
        >>> stack.member_clusters()[0].name
        'slurm'

    Malformed stacks fail at construction, not mid-run::

        >>> Stack(horizon=-1.0)
        Traceback (most recent call last):
        ...
        ValueError: horizon must be positive
    """

    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    supply: SupplySpec = field(default_factory=SupplySpec)
    middleware: Optional[MiddlewareSpec] = field(default_factory=MiddlewareSpec)
    workloads: Tuple[WorkloadSpec, ...] = ()
    probes: Tuple[ProbeSpec, ...] = ()
    seed: int = 0
    #: simulated horizon, seconds (workloads default to stopping here)
    horizon: float = 3600.0
    #: extra simulated time past the horizon (drain/settle phase)
    run_extra: float = 0.0
    name: str = "custom"
    #: federation members; () means "just the single ``cluster``"
    clusters: Tuple[ClusterSpec, ...] = ()
    #: cross-cluster routing policy (federations; None = flat routing)
    router: Optional[RouterSpec] = None
    #: sharded execution: this single-member stack stands in for
    #: federation member *i* (stream names, see ``member_stream``)
    shard_member_index: Optional[int] = None

    def __post_init__(self) -> None:
        for spec, expected in (
            (self.cluster, ClusterSpec),
            (self.supply, SupplySpec),
        ):
            if not isinstance(spec, expected):
                raise TypeError(f"expected {expected.__name__}, got {spec!r}")
        if self.middleware is not None and not isinstance(
            self.middleware, MiddlewareSpec
        ):
            raise TypeError(f"expected MiddlewareSpec or None, got {self.middleware!r}")
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "probes", tuple(self.probes))
        object.__setattr__(self, "clusters", tuple(self.clusters))
        for spec in self.clusters:
            if not isinstance(spec, ClusterSpec):
                raise TypeError(f"expected ClusterSpec, got {spec!r}")
        if self.router is not None:
            if not isinstance(self.router, RouterSpec):
                raise TypeError(f"expected RouterSpec or None, got {self.router!r}")
            if self.middleware is None:
                raise ValueError(
                    "a router needs the FaaS middleware; pass a MiddlewareSpec"
                )
        for spec in self.workloads:
            if not isinstance(spec, WorkloadSpec):
                raise TypeError(f"expected WorkloadSpec, got {spec!r}")
        for spec in self.probes:
            if not isinstance(spec, ProbeSpec):
                raise TypeError(f"expected ProbeSpec, got {spec!r}")
        for kind, specs in (
            ("workload", self.workloads),
            ("probe", self.probes),
        ):
            names = [spec.name for spec in specs]
            if len(names) != len(set(names)):
                raise ValueError(
                    f"duplicate {kind} components {sorted(names)}; handles and "
                    "artifacts are keyed by component name, so each may appear once"
                )
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.run_extra < 0:
            raise ValueError("run_extra must be >= 0")
        if self.shard_member_index is not None:
            if self.shard_member_index < 0:
                raise ValueError("shard_member_index must be >= 0")
            if self.clusters:
                raise ValueError(
                    "shard_member_index applies to single-member shard "
                    "stacks; a federated stack is sharded via run_sharded()"
                )

    # ------------------------------------------------------------------
    def validate(self, registry: ComponentRegistry = COMPONENTS) -> None:
        """Resolve every spec against the registry, raising on unknowns."""
        load_builtin_components()
        for spec in self.specs():
            spec.validate(registry)

    def member_clusters(self) -> Tuple[ClusterSpec, ...]:
        """The federation members (the single ``cluster`` when no list)."""
        return self.clusters if self.clusters else (self.cluster,)

    def specs(self) -> List[ComponentSpec]:
        specs: List[ComponentSpec] = list(self.member_clusters())
        specs.append(self.supply)
        if self.middleware is not None:
            specs.append(self.middleware)
        if self.router is not None:
            specs.append(self.router)
        specs.extend(self.workloads)
        specs.extend(self.probes)
        return specs

    # ------------------------------------------------------------------
    def build(self, registry: ComponentRegistry = COMPONENTS) -> StackContext:
        """Assemble the system (no workloads attached, nothing run)."""
        load_builtin_components()
        self.validate(registry)

        from dataclasses import replace

        slurm_configs = []
        seen_ids = set()
        for index, cluster_spec in enumerate(self.member_clusters()):
            member = registry.get("cluster", cluster_spec.name).factory(
                **cluster_spec.options
            )
            if not member.cluster_id:
                member = replace(member, cluster_id=f"c{index}")
            if member.cluster_id in seen_ids:
                raise ValueError(
                    f"duplicate cluster_id {member.cluster_id!r} in stack "
                    f"{self.name!r}; give each member a distinct cluster_id"
                )
            seen_ids.add(member.cluster_id)
            slurm_configs.append(member)

        supply: SupplyBuild = registry.get("supply", self.supply.name).factory(
            **self.supply.options
        )
        if self.middleware is not None:
            mw: MiddlewareBuild = registry.get(
                "middleware", self.middleware.name
            ).factory(**self.middleware.options)
            with_middleware = True
        else:
            if supply.needs_middleware:
                raise ValueError(
                    f"supply {self.supply.name!r} needs middleware; pass a "
                    "MiddlewareSpec (or choose supply 'none')"
                )
            mw = MiddlewareBuild()
            with_middleware = False

        router = None
        if self.router is not None:
            router = registry.get("router", self.router.name).factory(
                **self.router.options
            )

        from repro.faas.config import FaaSConfig

        whisk_config = HPCWhiskConfig(
            faas=FaaSConfig(**mw.faas_kwargs), **supply.whisk_kwargs
        )
        system = build_federation(
            slurm_configs,
            whisk_config,
            seed=self.seed,
            load_balancer=mw.load_balancer,
            router=router,
            with_middleware=with_middleware,
            with_manager=supply.with_manager,
            shard_member_index=self.shard_member_index,
        )
        ctx = StackContext(
            stack=self,
            env=system.env,
            streams=system.streams,
            system=system,
            horizon=self.horizon,
        )
        if supply.post_build is not None:
            supply.post_build(ctx)
        return ctx

    def run(self, registry: ComponentRegistry = COMPONENTS) -> SimulationReport:
        """Build, attach workloads and probes, simulate, and collect."""
        import time

        started = time.perf_counter()
        ctx = self.build(registry)

        for spec in self.workloads:
            handle = registry.get("workload", spec.name).factory(ctx, **spec.options)
            if handle is not None:
                ctx.handles[spec.name] = handle

        probes: List[Tuple[ProbeSpec, Probe]] = []
        for spec in self.probes:
            probe = registry.get("probe", spec.name).factory(ctx, **spec.options)
            probe.name = spec.name
            probes.append((spec, probe))

        ctx.env.run(until=self.horizon + self.run_extra)

        for _spec, probe in probes:
            probe.finish(ctx)
        for manager in ctx.system.managers.values():
            manager.stop()

        for spec, probe in probes:
            metrics, artifact = probe.collect(ctx)
            overlap = set(metrics) & set(ctx.metrics)
            if overlap:
                raise ValueError(
                    f"probe {spec.name!r} re-emits metric(s) {sorted(overlap)}; "
                    "probe metric names must be unique across the stack"
                )
            ctx.metrics.update(metrics)
            ctx.artifacts[spec.name] = artifact

        report = SimulationReport(
            name=self.name,
            seed=self.seed,
            horizon=self.horizon,
            metrics=dict(ctx.metrics),
            artifacts=dict(ctx.artifacts),
            system=ctx.system,
        )

        from repro.warehouse import capture

        capture.record_stack(report, wall_time_s=time.perf_counter() - started)
        return report

    def run_sharded(
        self,
        shards: Optional[int] = None,
        sync_window: float = 60.0,
    ) -> "SimulationReport":
        """Run this federated stack as one kernel process per member.

        Delegates to :func:`repro.shard.run_sharded`: conservative
        time-window synchronization at the federation-router boundary,
        per-member ``@<id>`` substreams (deterministic per seed), and a
        fleet-merged report.  ``shards`` must equal the member count
        when given.
        """
        import time

        from repro.shard import run_sharded

        started = time.perf_counter()
        report = run_sharded(self, shards=shards, sync_window=sync_window)

        from repro.warehouse import capture

        capture.record_stack(
            report,
            wall_time_s=time.perf_counter() - started,
            shards=len(self.member_clusters()) if shards is None else shards,
        )
        return report
