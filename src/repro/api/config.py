"""The declarative front door: YAML/JSON/dict configs in, runs out.

Two config shapes are accepted:

**Scenario mode** — run a registered scenario with overrides (the
``repro <scenario>`` CLI path, as data)::

    scenario: day
    scale: smoke
    overrides:
      model: var
      no_load: true

**Stack mode** — compose an arbitrary cluster x supply x workload x
probe stack with no Python module at all::

    name: var-day-with-probes
    seed: 42
    horizon: 1800
    stack:
      cluster: {nodes: 64}
      supply: var
      workloads:
        - idleness-trace
        - {name: gatling, qps: 5.0}
      probes: [slurm-sampler, coverage, ow-log, gatling-report]

Components may be bare strings (defaults only) or mappings whose
``name`` (alias ``kind``) picks the component and whose remaining keys
are options — validated against the component registry before anything
runs.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Type, Union

from repro.api.stack import (
    ClusterSpec,
    ComponentSpec,
    MiddlewareSpec,
    ProbeSpec,
    RouterSpec,
    SimulationReport,
    Stack,
    SupplySpec,
    WorkloadSpec,
)
from repro.scenarios.registry import REGISTRY, ScenarioRegistry, load_builtin
from repro.scenarios.spec import ScenarioResult

#: allowed top-level keys per config mode (scenario mode is owned by the
#: scenario registry — one source of truth for both entry points)
SCENARIO_KEYS = frozenset(ScenarioRegistry.CONFIG_KEYS)
STACK_KEYS = frozenset({"name", "seed", "horizon", "run_extra", "stack"})
STACK_SECTION_KEYS = frozenset(
    {"cluster", "clusters", "supply", "middleware", "router", "workloads", "probes"}
)

ConfigValue = Union[str, Mapping[str, Any], None]


def load_config_file(path: str) -> Dict[str, Any]:
    """Parse a YAML (or JSON — a YAML subset) config file."""
    with open(path) as handle:
        text = handle.read()
    try:
        import yaml
    except ImportError:  # pragma: no cover - the toolchain ships pyyaml
        import json

        try:
            config = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}: PyYAML is unavailable and the file is not JSON: {error}"
            ) from None
    else:
        config = yaml.safe_load(text)
    if not isinstance(config, Mapping):
        raise ValueError(f"{path}: expected a mapping at top level, got {config!r}")
    return dict(config)


def config_mode(config: Mapping[str, Any]) -> str:
    """Classify a config as ``"scenario"`` or ``"stack"`` (and validate keys)."""
    if "scenario" in config and "stack" in config:
        raise ValueError("config cannot have both 'scenario' and 'stack' keys")
    if "scenario" in config:
        unknown = set(config) - SCENARIO_KEYS
        if unknown:
            raise KeyError(
                f"unknown scenario-config key(s) {sorted(unknown)}; "
                f"allowed: {sorted(SCENARIO_KEYS)}"
            )
        return "scenario"
    if "stack" in config:
        unknown = set(config) - STACK_KEYS
        if unknown:
            raise KeyError(
                f"unknown stack-config key(s) {sorted(unknown)}; "
                f"allowed: {sorted(STACK_KEYS)}"
            )
        return "stack"
    raise ValueError("config needs a 'scenario' or a 'stack' key")


def _parse_spec(cls: Type[ComponentSpec], value: ConfigValue) -> ComponentSpec:
    """One component entry: a bare name string or a ``{name, **options}``."""
    if isinstance(value, str):
        return cls(value)
    if isinstance(value, Mapping):
        options = dict(value)
        name = options.pop("name", None)
        kind_alias = options.pop("kind", None)
        name = name or kind_alias
        return cls(name, **options)
    raise TypeError(
        f"expected a component name or mapping for {cls.__name__}, got {value!r}"
    )


def stack_from_config(config: Mapping[str, Any]) -> Stack:
    """Resolve a stack-mode config into a validated :class:`Stack`."""
    if config_mode(config) != "stack":
        raise ValueError("not a stack-mode config (missing 'stack' key)")
    section = config["stack"]
    if not isinstance(section, Mapping):
        raise TypeError(f"'stack' must be a mapping, got {section!r}")
    unknown = set(section) - STACK_SECTION_KEYS
    if unknown:
        raise KeyError(
            f"unknown stack section key(s) {sorted(unknown)}; "
            f"allowed: {sorted(STACK_SECTION_KEYS)}"
        )

    if "cluster" in section and "clusters" in section:
        raise ValueError(
            "stack section cannot have both 'cluster' and 'clusters' keys"
        )
    cluster = _parse_spec(ClusterSpec, section.get("cluster", "slurm"))

    raw_clusters = section.get("clusters")
    clusters: tuple = ()
    if raw_clusters is not None:
        if isinstance(raw_clusters, (str, Mapping)) or not isinstance(
            raw_clusters, Sequence
        ):
            raise TypeError("'clusters' must be a list of cluster components")
        if not raw_clusters:
            raise ValueError("'clusters' must name at least one member")
        clusters = tuple(
            _parse_spec(ClusterSpec, value) for value in raw_clusters
        )

    supply = _parse_spec(SupplySpec, section.get("supply", "fib"))

    router: Optional[RouterSpec] = None
    raw_router = section.get("router")
    if raw_router is not None and raw_router != "none":
        router = _parse_spec(RouterSpec, raw_router)

    middleware: Optional[MiddlewareSpec]
    raw_middleware = section.get("middleware", "openwhisk")
    if raw_middleware is None or raw_middleware == "none":
        middleware = None
    else:
        middleware = _parse_spec(MiddlewareSpec, raw_middleware)

    def parse_many(cls: Type[ComponentSpec], values: Any, label: str):
        if values is None:
            return ()
        if isinstance(values, (str, Mapping)):
            raise TypeError(f"'{label}' must be a list of components")
        if not isinstance(values, Sequence):
            raise TypeError(f"'{label}' must be a list of components")
        return tuple(_parse_spec(cls, value) for value in values)

    stack = Stack(
        cluster=cluster,
        clusters=clusters,
        supply=supply,
        middleware=middleware,
        router=router,
        workloads=parse_many(WorkloadSpec, section.get("workloads"), "workloads"),
        probes=parse_many(ProbeSpec, section.get("probes"), "probes"),
        seed=int(config.get("seed", 0)),
        horizon=float(config.get("horizon", 3600.0)),
        run_extra=float(config.get("run_extra", 0.0)),
        name=str(config.get("name", "custom")),
    )
    stack.validate()
    return stack


def run_config(
    config: Mapping[str, Any]
) -> Union[ScenarioResult, SimulationReport]:
    """Run a config of either mode and return its result object."""
    mode = config_mode(config)
    if mode == "scenario":
        load_builtin()
        spec = REGISTRY.spec_from_config(config)
        return REGISTRY.run_spec(spec)
    return stack_from_config(config).run()
