"""Packaged reproductions of every experiment in the paper.

One module per table/figure family; each exposes a ``run_*`` function
returning a plain result object with a ``render()`` text view, and
registers itself as a scenario in :data:`repro.scenarios.REGISTRY`
(importing this package populates the registry).  The CLI, the sweep
executor, the benchmark harness under ``benchmarks/``, and the record in
``EXPERIMENTS.md`` all drive experiments through that registry.

========================  =======================================
Module                    Reproduces
========================  =======================================
:mod:`.fig1`              Fig 1a/1b/1c — idleness analysis
:mod:`.fig2`              Fig 2 — job limits/runtimes/slack CDFs
:mod:`.fig3`              Fig 3 — the 5-node motivating example
:mod:`.table1`            Table I — job-length-set simulation
:mod:`.day`               Tables II/III, Figs 5a-c/6a-c, Sec. V-C
:mod:`.fig7`              Fig 7 — SeBS vs AWS Lambda
:mod:`.optimize`          Sec. IV-B — length-set optimization
:mod:`.longterm`          Sec. VII — long-horizon characterization
:mod:`.federation`        beyond the paper: two-cluster federated fleet
:mod:`.supply`            beyond the paper: supply-policy cells + matrix
:mod:`.stream_day`        beyond the paper: streaming full-day federation
========================  =======================================
"""

from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.day import DayConfig, DayResult, run_day
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.optimize import run_optimize
from repro.experiments.longterm import LongTermResult, run_longterm
from repro.experiments.federation import run_federation
from repro.experiments.supply import run_supply_matrix
from repro.experiments.stream_day import run_stream_day

__all__ = [
    "run_federation",
    "run_stream_day",
    "run_supply_matrix",
    "DayConfig",
    "DayResult",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig7Result",
    "LongTermResult",
    "run_longterm",
    "Table1Result",
    "run_day",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig7",
    "run_optimize",
    "run_table1",
]
