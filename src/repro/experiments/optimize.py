"""Length-set optimization over a generated idleness trace (Sec. IV-B).

Thin experiment wrapper around
:class:`~repro.hpcwhisk.optimizer.LengthSetOptimizer`: generate a trace,
rank every candidate family (Fibonacci / geometric / arithmetic) by the
ready share of a clairvoyant packing.  This used to live inline in the
CLI; as a registered scenario the ranking is sweepable across seeds and
trace shapes like every other experiment.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.hpcwhisk.optimizer import LengthSetOptimizer, OptimizationResult
from repro.scenarios import Param, ScenarioResult, ScenarioSpec, register
from repro.scenarios.presets import SMOKE
from repro.workloads.idleness import IdlenessTraceGenerator


def run_optimize(
    seed: int = 2022,
    horizon: float = 2 * 86400.0,
    num_nodes: int = 512,
) -> OptimizationResult:
    """Generate a trace and rank all default candidate length sets."""
    rng = np.random.default_rng(seed)
    trace = IdlenessTraceGenerator(rng, num_nodes=num_nodes).generate(horizon)
    return LengthSetOptimizer().optimize(trace)


@register(
    "optimize",
    help="length-set optimization",
    seed=2022,
    workload="idleness-trace",
    params=(
        Param("days", float, 2.0,
              scale={"quick": 1.0, "smoke": SMOKE.week / 86400.0},
              spec_field="horizon", to_spec=lambda d: d * 86400.0,
              help="trace length in days"),
        Param("nodes", int, 512, scale={"quick": 256, "smoke": SMOKE.num_nodes},
              spec_field="nodes", help="cluster size"),
    ),
)
def optimize_scenario(spec: ScenarioSpec) -> ScenarioResult:
    result = run_optimize(seed=spec.seed, horizon=spec.horizon, num_nodes=spec.nodes)
    metrics: Dict[str, float] = {
        "candidates": float(len(result.ranking)),
        "best_ready_share": result.ranking[0][1].ready_share,
    }
    for length_set, coverage in result.ranking:
        metrics[f"{length_set.name}_ready_share"] = coverage.ready_share
    return ScenarioResult(
        spec=spec, metrics=metrics, text=result.render(),
        artifacts={"result": result},
    )
