"""Fig 2: CDFs of declared limits, runtimes, and slack of prime HPC jobs.

Paper anchors: 74k non-commercial jobs completed in the monitored week; a
median job declares 60 minutes; 95% of jobs declare at least 15 minutes;
the slack (limit − runtime) distribution is visibly heavy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.metrics import cdf
from repro.analysis.report import render_kv
from repro.scenarios import Param, ScenarioResult, ScenarioSpec, register
from repro.workloads.hpc_trace import JobPopulation, SampledJob


@dataclass
class Fig2Result:
    jobs: List[SampledJob]
    stats: Dict[str, float] = field(default_factory=dict)

    def limit_cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        return cdf([j.limit for j in self.jobs])

    def runtime_cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        return cdf([j.runtime for j in self.jobs])

    def slack_cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        return cdf([j.slack for j in self.jobs])

    def render(self) -> str:
        return render_kv("Fig 2 — job population CDF anchor statistics", self.stats)


def run_fig2(seed: int = 2022, count: int = 74000) -> Fig2Result:
    """Sample the Fig 2 job population and compute its anchors."""
    rng = np.random.default_rng(seed)
    jobs = JobPopulation(rng).sample(count)
    limits = np.array([j.limit for j in jobs])
    runtimes = np.array([j.runtime for j in jobs])
    slack = limits - runtimes
    stats = {
        "jobs": float(count),
        "limit_median_min": float(np.median(limits)) / 60.0,
        "limit_p5_min": float(np.percentile(limits, 5)) / 60.0,
        "share_limit_ge_15min": float(np.mean(limits >= 15 * 60.0)),
        "runtime_median_min": float(np.median(runtimes)) / 60.0,
        "slack_median_min": float(np.median(slack)) / 60.0,
        "slack_mean_min": float(slack.mean()) / 60.0,
    }
    return Fig2Result(jobs=jobs, stats=stats)


@register(
    "fig2",
    help="job population CDFs",
    seed=2022,
    workload="hpc-jobs",
    params=(
        Param("count", int, 74000, scale={"quick": 20000, "smoke": 2000},
              help="number of jobs to sample"),
    ),
)
def fig2_scenario(spec: ScenarioSpec) -> ScenarioResult:
    result = run_fig2(seed=spec.seed, count=spec.params["count"])
    return ScenarioResult(
        spec=spec, metrics=dict(result.stats), text=result.render(),
        artifacts={"result": result},
    )
