"""Fig 1: the week-long idleness analysis of the production cluster.

Paper anchors (Prometheus, 21–27 Feb 2022, commercial nodes excluded):

* Fig 1a — CDF of idle-node counts: p25 = 2, median = 5, mean 9.23,
  ~80% of time at most 13 idle nodes, p99 ≈ 67;
* Fig 1b — CDF of idle-period lengths: median 2 min, p75 ≈ 4 min, mean
  slightly over 5 min, 5% above 23 min;
* Fig 1c — rapidly-changing time series with bursts up to ~150;
* 10.11% of time zero idle nodes; total idle surface > 37,000 core-hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.analysis.metrics import cdf
from repro.analysis.report import render_kv
from repro.scenarios import Param, ScenarioResult, ScenarioSpec, register
from repro.scenarios.presets import FULL, QUICK, SMOKE
from repro.workloads.idleness import IdlenessTrace, IdlenessTraceGenerator


@dataclass
class Fig1Result:
    trace: IdlenessTrace
    #: sampling step used for the count series, seconds
    step: float
    times: np.ndarray
    counts: np.ndarray
    stats: Dict[str, float] = field(default_factory=dict)

    def count_cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fig 1a data."""
        return cdf(self.counts)

    def length_cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fig 1b data."""
        return cdf(self.trace.lengths())

    def time_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fig 1c data."""
        return self.times, self.counts

    def render(self) -> str:
        return render_kv("Fig 1 — idleness analysis (paper anchors in DESIGN.md §5)", self.stats)


def run_fig1(
    seed: int = 2022,
    horizon: float = 7 * 24 * 3600.0,
    num_nodes: int = 2239,
    node_cores: int = 24,
    step: float = 10.0,
) -> Fig1Result:
    """Generate a week of idleness and compute the Fig 1 statistics."""
    rng = np.random.default_rng(seed)
    trace = IdlenessTraceGenerator(rng, num_nodes=num_nodes).generate(horizon)
    times, counts = trace.count_series(step)
    lengths = trace.lengths()
    stats = {
        "idle_nodes_mean": float(counts.mean()),
        "idle_nodes_p25": float(np.percentile(counts, 25)),
        "idle_nodes_median": float(np.median(counts)),
        "idle_nodes_p80": float(np.percentile(counts, 80)),
        "idle_nodes_p99": float(np.percentile(counts, 99)),
        "idle_nodes_max": float(counts.max()),
        "zero_idle_share": float(np.mean(counts == 0)),
        "period_median_s": float(np.median(lengths)),
        "period_p75_s": float(np.percentile(lengths, 75)),
        "period_mean_s": float(lengths.mean()),
        "period_share_gt_23min": float(np.mean(lengths > 23 * 60.0)),
        "idle_surface_core_hours": trace.total_idle_surface() / 3600.0 * node_cores,
        "num_periods": float(len(trace.periods)),
    }
    return Fig1Result(trace=trace, step=step, times=times, counts=counts, stats=stats)


@register(
    "fig1",
    help="idleness analysis",
    seed=2022,
    workload="idleness-trace",
    params=(
        Param("days", float, FULL.week / 86400.0,
              scale={"quick": QUICK.week / 86400.0, "smoke": SMOKE.week / 86400.0},
              spec_field="horizon", to_spec=lambda d: d * 86400.0,
              help="trace length in days"),
        Param("nodes", int, FULL.num_nodes,
              scale={"quick": QUICK.num_nodes, "smoke": SMOKE.num_nodes},
              spec_field="nodes", help="cluster size"),
        Param("plot", bool, False, sweepable=False, help="render ASCII figures"),
    ),
)
def fig1_scenario(spec: ScenarioSpec) -> ScenarioResult:
    result = run_fig1(seed=spec.seed, horizon=spec.horizon, num_nodes=spec.nodes)
    parts = [result.render()]
    if spec.params["plot"]:
        from repro.analysis.figures import ascii_cdf, ascii_timeseries

        times, counts = result.time_series()
        parts.append(ascii_timeseries(times, counts, title="Fig 1c — idle nodes over time"))
        parts.append(ascii_cdf(result.trace.lengths(), title="Fig 1b — idle period lengths",
                               x_transform=np.log10, x_label="log10 seconds"))
    return ScenarioResult(
        spec=spec, metrics=dict(result.stats), text="\n".join(parts),
        artifacts={"result": result},
    )
