"""Table I: clairvoyant coverage simulation per job-length set.

A week-long idleness trace is greedily packed with each of the six
candidate pilot-length sets (20-second warm-up charged per job).  Paper
anchors: the choice of set barely matters (~80% ready across the board,
"not used" identical for every set), A1 edges out the other Fibonacci
variants, C2 places the fewest jobs and the least warm-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.analysis.coverage import CoverageResult, CoverageSimulator
from repro.analysis.report import render_table1
from repro.hpcwhisk.lengths import JOB_LENGTH_SETS, JobLengthSet
from repro.scenarios import Param, ScenarioResult, ScenarioSpec, register
from repro.scenarios.presets import FULL, QUICK, SMOKE
from repro.workloads.idleness import IdlenessTrace, IdlenessTraceGenerator


@dataclass
class Table1Result:
    trace: IdlenessTrace
    results: Dict[str, Tuple[JobLengthSet, CoverageResult]] = field(default_factory=dict)

    def coverage(self, name: str) -> CoverageResult:
        return self.results[name][1]

    def best_ready_set(self) -> str:
        """The set with the highest ready share."""
        return max(self.results, key=lambda n: self.results[n][1].ready_share)

    def render(self) -> str:
        return render_table1(self.results)


def run_table1(
    seed: int = 2022,
    horizon: float = 7 * 24 * 3600.0,
    num_nodes: int = 2239,
    warmup: float = 20.0,
) -> Table1Result:
    """Generate the week trace and pack it with every candidate set."""
    rng = np.random.default_rng(seed)
    trace = IdlenessTraceGenerator(rng, num_nodes=num_nodes).generate(horizon)
    by_node: Dict[str, list] = {}
    for period in trace.periods:
        by_node.setdefault(period.node, []).append((period.start, period.end))
    simulator = CoverageSimulator(warmup=warmup)
    results: Dict[str, Tuple[JobLengthSet, CoverageResult]] = {}
    for name, length_set in JOB_LENGTH_SETS.items():
        results[name] = (length_set, simulator.run(by_node, length_set, horizon=horizon))
    return Table1Result(trace=trace, results=results)


@register(
    "table1",
    help="job-length-set simulation",
    seed=2022,
    workload="idleness-trace",
    params=(
        Param("days", float, FULL.week / 86400.0,
              scale={"quick": QUICK.week / 86400.0, "smoke": SMOKE.week / 86400.0},
              spec_field="horizon", to_spec=lambda d: d * 86400.0,
              help="trace length in days"),
        Param("nodes", int, FULL.num_nodes,
              scale={"quick": QUICK.num_nodes, "smoke": SMOKE.num_nodes},
              spec_field="nodes", help="cluster size"),
    ),
)
def table1_scenario(spec: ScenarioSpec) -> ScenarioResult:
    result = run_table1(seed=spec.seed, horizon=spec.horizon, num_nodes=spec.nodes)
    metrics: Dict[str, float] = {}
    for name, (_length_set, coverage) in result.results.items():
        metrics[f"{name}_ready_share"] = coverage.ready_share
        metrics[f"{name}_warmup_share"] = coverage.warmup_share
        metrics[f"{name}_num_jobs"] = float(coverage.num_jobs)
    return ScenarioResult(
        spec=spec, metrics=metrics, text=result.render(),
        artifacts={"result": result},
    )
