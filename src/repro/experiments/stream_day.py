"""The streaming full-day experiment: a million-user trace, one machine.

The ROADMAP's north-star load — "millions of users over a full day" —
is structurally impossible for the materialize-then-replay workload
path (a day at 120 req/s is ~10M invocation objects).  This scenario
drives a two-member federation from the **streaming** workload layer
instead: a lazy Poisson source under a diurnal envelope, with an
evening flash crowd and a follow-the-sun region shift, pulled one
invocation at a time so resident memory is O(in-flight), never
O(horizon).

The same stack runs in two execution modes:

* ``--shards 0`` (default) — the exact single-process federation.
* ``--shards 2`` — one kernel process per member, window-synchronized
  at the router boundary (:mod:`repro.shard`).  Per-member metrics are
  seed-identical to the unsharded run; stream/routing aggregates agree
  within the ``--sync-window`` tolerance.

At the ``full`` scale (24 h x 120 req/s ≈ 10M invocations) the sharded
mode is the difference between "eventually" and "over lunch".
"""

from __future__ import annotations

from repro.api import (
    ClusterSpec,
    MiddlewareSpec,
    ProbeSpec,
    RouterSpec,
    SimulationReport,
    Stack,
    SupplySpec,
    WorkloadSpec,
)
from repro.scenarios import Param, ScenarioResult, ScenarioSpec, register

FULL_NODES, FULL_EDGE = 200, 100
QUICK_NODES, QUICK_EDGE = 96, 48
SMOKE_NODES, SMOKE_EDGE = 16, 8

#: flash crowd fires at this fraction of the horizon ("evening spike")
FLASH_FRAC = 0.7


def stream_day_stack(
    nodes: int,
    edge_nodes: int,
    horizon: float,
    qps: float,
    seed: int,
    azure_durations: bool = False,
) -> Stack:
    """The streaming two-member federation as a declarative stack."""
    return Stack(
        clusters=(
            ClusterSpec(nodes=nodes, cluster_id="alpha"),
            ClusterSpec(nodes=edge_nodes, cluster_id="beta"),
        ),
        supply=SupplySpec("fib"),
        middleware=MiddlewareSpec(),
        router=RouterSpec("weighted-idle"),
        workloads=(
            WorkloadSpec(
                "idleness-trace",
                intensity_scale=0.8,
                length_scale=1.5,
                outage_share=0.0,
                min_intensity=max(2.0, nodes / 8.0),
                diurnal_amplitude=0.5,
            ),
            WorkloadSpec(
                "faas-stream",
                qps=qps,
                functions=100,
                azure_durations=azure_durations,
                diurnal_amplitude=0.4,
                diurnal_period=86_400.0,
                flash_at=FLASH_FRAC * horizon,
                flash_magnitude=4.0,
                flash_rise=60.0,
                flash_decay=600.0,
                region_shift=True,
                region_period=horizon,
            ),
        ),
        probes=(
            ProbeSpec("slurm-sampler", history=False),
            ProbeSpec("stream-report"),
            ProbeSpec("federation-stats"),
        ),
        seed=seed,
        horizon=horizon,
        name="stream-day",
    )


def render_stream_day(report: SimulationReport, shards: int) -> str:
    """Fleet + per-member text view of one streaming run."""
    m = report.metrics
    members = ("alpha", "beta")
    mode = (
        f"sharded x{shards} (sync window {m.get('sync_window_s', 0):.0f}s)"
        if shards
        else "unsharded (exact)"
    )
    lines = [
        f"STREAM DAY — streaming federation, {mode}",
        "",
        f"{'metric':<26} {'fleet':>10} "
        + " ".join(f"{cid:>10}" for cid in members),
    ]

    def row(label: str, key: str, scale: float = 1.0, digits: int = 2,
            fleet: float = None) -> str:
        if fleet is None:
            fleet = m.get(key, float("nan"))
        cells = [m.get(f"{key}@{cid}", float("nan")) * scale for cid in members]
        return (
            f"{label:<26} {fleet * scale:>10.{digits}f} "
            + " ".join(f"{cell:>10.{digits}f}" for cell in cells)
        )

    lines.append(row("coverage %", "coverage", 100.0))
    lines.append(row("avg whisk nodes", "avg_whisk_nodes"))
    lines.append(row("avg available nodes", "avg_available_nodes"))
    lines.append(
        row("activations routed", "fed_routed", digits=0,
            fleet=m.get("fed_routed_total", float("nan")))
    )
    lines.append(row("routed share %", "fed_routed_share", 100.0, fleet=1.0))
    lines += [
        "",
        f"stream requests total    : {m['stream_requests_total']:.0f}",
        f"accepted by controller   : {m['stream_accepted_share'] * 100:.2f}%",
        f"success of accepted      : "
        f"{m['stream_success_share_of_invoked'] * 100:.2f}%",
    ]
    if "stream_p50_response_s" in m:
        lines += [
            f"median response time     : {m['stream_p50_response_s'] * 1000:.0f} ms",
            f"p99 response time        : {m['stream_p99_response_s']:.2f} s",
        ]
    if "fed_rejected_503" in m:
        lines.append(f"rejected 503             : {m['fed_rejected_503']:.0f}")
    return "\n".join(lines)


@register(
    "stream_day",
    help="streaming full-day federation (lazy sources, optional shards)",
    seed=2027,
    workload="faas-stream",
    params=(
        Param("hours", float, 24.0, scale={"quick": 2.0, "smoke": 0.25},
              spec_field="horizon", to_spec=lambda h: h * 3600.0,
              help="experiment length in hours"),
        Param("nodes", int, FULL_NODES,
              scale={"quick": QUICK_NODES, "smoke": SMOKE_NODES},
              spec_field="nodes", help="primary (alpha) cluster size"),
        Param("edge_nodes", int, FULL_EDGE,
              scale={"quick": QUICK_EDGE, "smoke": SMOKE_EDGE},
              help="edge (beta) cluster size"),
        Param("qps", float, 120.0, scale={"quick": 12.0, "smoke": 4.0},
              help="base streaming request rate (pre-modulation)"),
        Param("shards", int, 0,
              help="0 = unsharded exact run; 2 = one process per member"),
        Param("sync_window", float, 60.0,
              help="sharded runs: synchronization window (simulated s)"),
        Param("azure_durations", bool, False,
              help="draw Azure-trace durations instead of fixed sleeps"),
    ),
)
def stream_day_scenario(spec: ScenarioSpec) -> ScenarioResult:
    shards = int(spec.params["shards"])
    stack = stream_day_stack(
        nodes=spec.nodes,
        edge_nodes=spec.params["edge_nodes"],
        horizon=spec.horizon,
        qps=spec.params["qps"],
        seed=spec.seed,
        azure_durations=spec.params["azure_durations"],
    )
    if shards:
        report = stack.run_sharded(
            shards=shards, sync_window=spec.params["sync_window"]
        )
    else:
        report = stack.run()
    return ScenarioResult(
        spec=spec,
        metrics=dict(report.metrics),
        text=render_stream_day(report, shards),
        artifacts={"report": report},
    )


def run_stream_day(hours: float = 2.0, shards: int = 0):
    """Library entry point mirroring the other experiment modules."""
    from repro.scenarios import REGISTRY

    return REGISTRY.run("stream_day", {"hours": hours, "shards": shards})
