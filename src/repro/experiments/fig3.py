"""Fig 3: the 5-node motivating example.

Four HPC jobs on five nodes — (3 nodes × 5 min), (1 × 13), (2 × 7),
(4 × 8) — leave substantial idle time even in a minimal-makespan
schedule (the paper quotes 1.2 idle nodes on average); short single-node
pilot jobs of 2/4/6/10 minutes fill 83% of the previously idle slots
after accounting for invoker warm-up.

We pin the prime jobs to a concrete minimal-makespan assignment, run the
real cluster simulator with a fib-style manager restricted to the
{2, 4, 6, 10}-minute set, and measure how much of the idle surface ends
up covered by ready invokers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.analysis.idle_periods import intervals_by_node
from repro.analysis.metrics import node_surface
from repro.analysis.report import render_kv
from repro.api import (
    ClusterSpec,
    MiddlewareSpec,
    ProbeSpec,
    Stack,
    SupplySpec,
    WorkloadSpec,
)
from repro.hpcwhisk.lengths import JobLengthSet
from repro.scenarios import ScenarioResult, ScenarioSpec, register

#: the pinned minimal-makespan assignment we reproduce (minutes)
PRIME_JOBS: Tuple[Tuple[str, Tuple[str, ...], float, float], ...] = (
    ("j1", ("n0000", "n0001", "n0002"), 0.0, 5.0),
    ("j2", ("n0003",), 0.0, 13.0),
    ("j3", ("n0000", "n0001"), 5.0, 12.0),
    ("j4", ("n0000", "n0001", "n0002", "n0004"), 12.0, 20.0),
)

FIG3_LENGTH_SET = JobLengthSet("fig3", (2, 4, 6, 10))


@dataclass
class Fig3Result:
    horizon: float
    idle_surface_node_min: float
    covered_surface_node_min: float
    ready_surface_node_min: float
    pilots_started: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Share of the would-be-idle surface occupied by pilot jobs."""
        total = self.idle_surface_node_min + self.covered_surface_node_min
        return self.covered_surface_node_min / total if total else 0.0

    @property
    def ready_coverage(self) -> float:
        """Share of the would-be-idle surface with *ready* invokers (the
        paper's 83%)."""
        total = self.idle_surface_node_min + self.covered_surface_node_min
        return self.ready_surface_node_min / total if total else 0.0

    def render(self) -> str:
        return render_kv("Fig 3 — 5-node example with pilot fill", self.stats)


def fig3_stack(seed: int = 7) -> Stack:
    """The 5-node example as a declarative :class:`~repro.api.Stack`."""
    return Stack(
        cluster=ClusterSpec(nodes=5),
        supply=SupplySpec(
            "fib",
            length_set=FIG3_LENGTH_SET,
            queue_per_length=5,
            replenish_interval=5.0,
        ),
        middleware=MiddlewareSpec(),
        workloads=(
            WorkloadSpec(
                "pinned-jobs",
                jobs=[
                    {
                        "name": name,
                        "nodes": list(nodes),
                        "start_min": start_min,
                        "end_min": end_min,
                    }
                    for name, nodes, start_min, end_min in PRIME_JOBS
                ],
            ),
        ),
        probes=(ProbeSpec("slurm-sampler", pause=2.0),),
        seed=seed,
        horizon=20 * 60.0,
        name="fig3",
    )


def run_fig3(seed: int = 7) -> Fig3Result:
    """Run the 5-node example with a {2,4,6,10}-minute pilot supply."""
    report = fig3_stack(seed=seed).run()
    horizon = report.horizon
    system = report.system

    samples = report.artifacts["slurm-sampler"].log.samples
    idle = intervals_by_node(samples, "idle", end_time=horizon)
    whisk = intervals_by_node(samples, "whisk", end_time=horizon)
    idle_surface = node_surface(idle) / 60.0
    whisk_surface = node_surface(whisk) / 60.0

    ready_surface = 0.0
    for timeline in system.pilot_timelines:
        if timeline.healthy_at is None:
            continue
        end = timeline.sigterm_at or timeline.finished_at or horizon
        ready_surface += max(0.0, min(end, horizon) - timeline.healthy_at) / 60.0

    result = Fig3Result(
        horizon=horizon,
        idle_surface_node_min=idle_surface,
        covered_surface_node_min=whisk_surface,
        ready_surface_node_min=ready_surface,
        pilots_started=len(system.pilot_timelines),
    )
    total = idle_surface + whisk_surface
    result.stats = {
        "would_be_idle_surface_node_min": total,
        "avg_idle_nodes_without_pilots": total / (horizon / 60.0),
        "pilot_covered_node_min": whisk_surface,
        "ready_covered_node_min": ready_surface,
        "pilot_coverage": result.coverage,
        "ready_coverage": result.ready_coverage,
        "pilots_started": float(result.pilots_started),
    }
    return result


@register(
    "fig3",
    help="5-node example",
    seed=7,
    workload="pinned-jobs",
)
def fig3_scenario(spec: ScenarioSpec) -> ScenarioResult:
    result = run_fig3(seed=spec.seed)
    return ScenarioResult(
        spec=spec, metrics=dict(result.stats), text=result.render(),
        artifacts={"result": result},
    )
