"""Supply-policy scenarios: one cell, and the ranked matrix.

``supply`` runs **one** (policy, workload, shape) combination as a
composed stack — idle-surface prime jobs plus a FaaS load client over
the chosen supply controller — and reports the four supply objectives
(harvest, batch slowdown, cold-start rate, pilot churn) alongside the
controller's own accounting.

``supply_matrix`` sweeps ``supply`` over policies × workloads ×
cluster shapes through the :class:`~repro.scenarios.sweep.SweepExecutor`
(optionally across worker processes) and emits the ranked comparison of
:mod:`repro.supply.matrix`.  The ``repro matrix`` CLI command is a thin
front door over this scenario.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.api import (
    ClusterSpec,
    MiddlewareSpec,
    ProbeSpec,
    SimulationReport,
    Stack,
    SupplySpec,
    WorkloadSpec,
)
from repro.scenarios import Param, ScenarioResult, ScenarioSpec, register
from repro.supply.matrix import run_matrix
from repro.supply.policies import POLICY_NAMES

#: FaaS load clients a cell can drive (both expose a Gatling report)
WORKLOAD_CHOICES = ("gatling", "sebs")

FULL_NODES, QUICK_NODES, SMOKE_NODES = 64, 24, 8
FULL_HOURS, QUICK_HOURS, SMOKE_HOURS = 6.0, 1.0, 0.2

#: matrix defaults: every policy × both workloads × one shape
DEFAULT_POLICIES = ",".join(POLICY_NAMES)
DEFAULT_WORKLOADS = ",".join(WORKLOAD_CHOICES)


def supply_stack(
    policy: str,
    workload: str,
    nodes: int,
    horizon: float,
    qps: float,
    seed: int,
) -> Stack:
    """One supply cell as a declarative stack."""
    workloads: List[WorkloadSpec] = [
        WorkloadSpec("idleness-trace"),
        WorkloadSpec(workload, qps=qps),
    ]
    return Stack(
        cluster=ClusterSpec(nodes=nodes),
        supply=SupplySpec(policy),
        middleware=MiddlewareSpec(),
        workloads=tuple(workloads),
        probes=(
            ProbeSpec("slurm-sampler"),
            ProbeSpec("ow-log"),
            ProbeSpec("accounting"),
            ProbeSpec("supply-stats"),
            ProbeSpec("gatling-report", source=workload),
        ),
        seed=seed,
        horizon=horizon,
        name=f"supply-{policy}-{workload}",
    )


def render_supply(report: SimulationReport, policy: str, workload: str) -> str:
    """Objective-first text view of one supply cell."""
    m = report.metrics

    def get(key: str) -> float:
        return m.get(key, float("nan"))

    return "\n".join(
        [
            f"SUPPLY CELL — policy {policy!r} x workload {workload!r}",
            "",
            f"harvest (coverage)       : {get('coverage') * 100:.2f}%",
            f"prime mean wait          : {get('prime_mean_wait_s'):.1f} s",
            f"cold-start rate          : {get('cold_start_rate') * 100:.2f}%",
            f"pilot churn              : {get('pilot_churn_per_h'):.1f} jobs/h",
            "",
            f"pilots started           : {get('pilots_started'):.0f}",
            f"supply submitted         : {get('supply_submitted'):.0f} "
            f"(over {get('supply_rounds'):.0f} rounds, "
            f"{get('supply_truncated'):.0f} truncated)",
            f"mean pilot queue depth   : {get('supply_mean_queue_depth'):.2f}",
            f"avg healthy invokers     : {get('avg_healthy_invokers'):.2f}",
            f"requests total           : {get('requests_total'):.0f}",
            f"accepted by controller   : {get('accepted_share') * 100:.2f}%",
            f"median response time     : {get('median_response_s') * 1000:.0f} ms",
        ]
    )


@register(
    "supply",
    help="one supply-policy cell (policy x workload x cluster shape)",
    seed=2027,
    params=(
        Param("policy", str, "fib", choices=POLICY_NAMES,
              spec_field="supply", help="supply controller under test"),
        Param("workload", str, "gatling", choices=WORKLOAD_CHOICES,
              spec_field="workload", help="FaaS load client"),
        Param("hours", float, FULL_HOURS,
              scale={"quick": QUICK_HOURS, "smoke": SMOKE_HOURS},
              spec_field="horizon", to_spec=lambda h: h * 3600.0,
              help="experiment length in hours"),
        Param("nodes", int, FULL_NODES,
              scale={"quick": QUICK_NODES, "smoke": SMOKE_NODES},
              spec_field="nodes", help="cluster size"),
        Param("qps", float, 5.0, help="load-client request rate"),
    ),
)
def supply_scenario(spec: ScenarioSpec) -> ScenarioResult:
    policy = spec.params["policy"]
    workload = spec.params["workload"]
    report = supply_stack(
        policy=policy,
        workload=workload,
        nodes=spec.nodes,
        horizon=spec.horizon,
        qps=spec.params["qps"],
        seed=spec.seed,
    ).run()
    return ScenarioResult(
        spec=spec,
        metrics=dict(report.metrics),
        text=render_supply(report, policy, workload),
        artifacts={"report": report},
    )


def _split_csv(raw: str, label: str) -> List[str]:
    values = [token.strip() for token in str(raw).split(",") if token.strip()]
    if not values:
        raise ValueError(f"{label} must name at least one entry, got {raw!r}")
    return values


def _validated(values: Sequence[str], known: Sequence[str], label: str) -> List[str]:
    unknown = [value for value in values if value not in known]
    if unknown:
        raise ValueError(f"unknown {label} {unknown}; known: {list(known)}")
    return list(values)


def parse_matrix_lists(params) -> tuple:
    """Validated ``(policies, workloads, shapes)`` from matrix params.

    Shared by the scenario runner and the ``repro matrix`` CLI's
    pre-run validation, so bad names fail as usage errors before any
    cell executes.
    """
    policies = _validated(
        _split_csv(params["policies"], "policies"), POLICY_NAMES, "policy"
    )
    workloads = _validated(
        _split_csv(params["workloads"], "workloads"),
        WORKLOAD_CHOICES,
        "workload",
    )
    shapes = [int(token) for token in _split_csv(params["shapes"], "shapes")]
    return policies, workloads, shapes


@register(
    "supply_matrix",
    help="ranked supply-policy x workload x shape comparison matrix",
    seed=2027,
    params=(
        Param("policies", str, DEFAULT_POLICIES,
              help="comma-separated supply policies to compare"),
        Param("workloads", str, DEFAULT_WORKLOADS,
              help="comma-separated FaaS workloads to drive"),
        Param("shapes", str, "48", scale={"quick": "24", "smoke": "8"},
              help="comma-separated cluster sizes (nodes)"),
        Param("hours", float, FULL_HOURS,
              scale={"quick": QUICK_HOURS, "smoke": SMOKE_HOURS},
              help="per-cell experiment length in hours"),
        Param("qps", float, 5.0, help="per-cell load-client request rate"),
        Param("seeds", int, 1, help="seed replications per cell"),
        Param("jobs", int, 1, sweepable=False,
              help="worker processes for the sweep (1 = serial)"),
    ),
)
def supply_matrix_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Run the matrix; per-run seeds derive from this scenario's seed."""
    policies, workloads, shapes = parse_matrix_lists(spec.params)
    seeds = int(spec.params["seeds"])
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    result = run_matrix(
        policies,
        workloads,
        shapes,
        hours=spec.params["hours"],
        qps=spec.params["qps"],
        seeds=seeds,
        scale=spec.scale,
        jobs=max(1, int(spec.params["jobs"])),
        base_seed=spec.seed,
    )
    return ScenarioResult(
        spec=spec,
        metrics=result.flat_metrics(),
        text=result.render(),
        artifacts={"matrix": result},
    )


def run_supply_matrix(
    policies: str = DEFAULT_POLICIES,
    workloads: str = DEFAULT_WORKLOADS,
    scale: str = "quick",
    jobs: int = 1,
) -> ScenarioResult:
    """Library entry point mirroring the other experiment modules."""
    from repro.scenarios import REGISTRY

    return REGISTRY.run(
        "supply_matrix",
        {"policies": policies, "workloads": workloads, "jobs": jobs},
        scale=scale,
    )
