"""Fig 7: SeBS compute benchmarks — HPC node vs AWS Lambda.

The three compute-intensive SeBS functions (bfs, mst, pagerank) are
executed for real on this machine (the "Prometheus node" side — scaled
runs, same code paths) and compared against the calibrated Lambda model
at its fastest configuration (2,048 MB).  Paper anchor: a consistent
≈15% advantage for the HPC node across all three functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.scenarios import Param, ScenarioResult, ScenarioSpec, register
from repro.scenarios.presets import FULL, QUICK, SMOKE
from repro.workloads.lambda_model import LambdaPerformanceModel
from repro.workloads.sebs import (
    build_sebs_functions,
    model_invocations,
    time_invocations,
)


@dataclass
class Fig7Row:
    function: str
    prometheus_median_s: float
    lambda_median_s: float
    prometheus_p25_s: float
    prometheus_p75_s: float
    lambda_p25_s: float
    lambda_p75_s: float

    @property
    def advantage(self) -> float:
        """Relative Lambda slowdown: lambda/prometheus − 1 (paper ≈ 0.15)."""
        return self.lambda_median_s / self.prometheus_median_s - 1.0


@dataclass
class Fig7Result:
    rows: List[Fig7Row] = field(default_factory=list)
    memory_mb: float = 2048.0

    def row(self, name: str) -> Fig7Row:
        for row in self.rows:
            if row.function == name:
                return row
        raise KeyError(name)

    def render(self) -> str:
        lines = [
            f"Fig 7 — SeBS warm performance, local node vs Lambda @ {self.memory_mb:.0f} MB",
            f"{'function':<10} {'node median':>12} {'lambda median':>14} {'advantage':>10}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.function:<10} {row.prometheus_median_s * 1000:>10.1f}ms "
                f"{row.lambda_median_s * 1000:>12.1f}ms {row.advantage * 100:>9.1f}%"
            )
        return "\n".join(lines)


def run_fig7(
    seed: int = 2022,
    invocations: int = 200,
    graph_size: int = 40000,
    memory_mb: float = 2048.0,
    synthetic: bool = False,
) -> Fig7Result:
    """Time the kernels for real; synthesize the Lambda comparison.

    With ``synthetic=True`` the node side comes from the calibrated
    timing model instead of the host clock, making the whole run
    byte-reproducible (used by golden-trace tests and sweeps).
    """
    rng = np.random.default_rng(seed)
    model = LambdaPerformanceModel()
    result = Fig7Result(memory_mb=memory_mb)
    for function in build_sebs_functions(rng, graph_size=graph_size):
        if synthetic:
            local_times = model_invocations(
                function.name, invocations, graph_size, rng
            )
        else:
            local_times = time_invocations(function, invocations)
        lambda_times = model.execution_times(local_times, memory_mb, rng)
        result.rows.append(
            Fig7Row(
                function=function.name,
                prometheus_median_s=float(np.median(local_times)),
                lambda_median_s=float(np.median(lambda_times)),
                prometheus_p25_s=float(np.percentile(local_times, 25)),
                prometheus_p75_s=float(np.percentile(local_times, 75)),
                lambda_p25_s=float(np.percentile(lambda_times, 25)),
                lambda_p75_s=float(np.percentile(lambda_times, 75)),
            )
        )
    return result


@register(
    "fig7",
    help="SeBS vs Lambda",
    seed=2022,
    workload="sebs",
    params=(
        # historical CLI default (50), not FULL.sebs_invocations (200):
        # single full runs stay fast; benchmarks use the paper count
        Param("invocations", int, 50,
              scale={"quick": QUICK.sebs_invocations, "smoke": SMOKE.sebs_invocations},
              help="timed invocations per function"),
        Param("graph_size", int, FULL.sebs_graph,
              scale={"quick": QUICK.sebs_graph, "smoke": SMOKE.sebs_graph},
              help="graph size for the SeBS kernels"),
        Param("synthetic", bool, False,
              help="model the node side instead of timing it live "
                   "(byte-reproducible; used by golden-trace tests)"),
    ),
)
def fig7_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Note: the node side is timed live (unless ``synthetic``), so
    default metrics are not bit-reproducible."""
    result = run_fig7(seed=spec.seed, invocations=spec.params["invocations"],
                      graph_size=spec.params["graph_size"],
                      synthetic=spec.params["synthetic"])
    metrics: Dict[str, float] = {}
    for row in result.rows:
        metrics[f"{row.function}_advantage"] = row.advantage
        metrics[f"{row.function}_node_median_s"] = row.prometheus_median_s
        metrics[f"{row.function}_lambda_median_s"] = row.lambda_median_s
    metrics["mean_advantage"] = float(
        np.mean([row.advantage for row in result.rows])
    )
    return ScenarioResult(
        spec=spec, metrics=metrics, text=result.render(),
        artifacts={"result": result},
    )
