"""The 24-hour production experiments (Tables II/III, Figs 5/6, Sec. V-C).

One run assembles the full stack — cluster + prime trace replay + the
chosen pilot supply manager + the FaaS middleware + a constant-rate
Gatling client — and measures it from the paper's three perspectives.

Paper anchors:

========================  ==========  ==========
metric                    fib (3/17)  var (3/21)
========================  ==========  ==========
avg available nodes          11.85       7.38
coverage (Slurm-level)       90%         68%
coverage (clairvoyant)       92%         84%
avg healthy invokers         10.39       4.96
requests accepted            95.29%      78.28%
success of accepted          95.19%      96.99%
median response (Gatling)    865 ms      1227 ms
========================  ==========  ==========

The two days differed materially in idle supply; ``intensity_scale``
reproduces that (DESIGN.md §7).  ``num_nodes`` defaults to 300 — the
idleness process is calibrated in *absolute* node counts, so the harvest
dynamics are unchanged versus a 2,239-node backdrop while the prime-job
replay stays cheap; pass 2239 for the full-size cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.coverage import CoverageResult, CoverageSimulator
from repro.analysis.idle_periods import intervals_by_node
from repro.analysis.metrics import PercentileSummary, percentile_summary
from repro.analysis.owlog import OWLevelStates, ow_level_states, ready_period_stats
from repro.analysis.report import render_table23
from repro.analysis.sampler import SlurmSampler
from repro.cluster.slurmctld import SlurmConfig
from repro.faas.functions import sleep_functions
from repro.hpcwhisk.config import HPCWhiskConfig, SupplyModel
from repro.hpcwhisk.deploy import HPCWhiskSystem, build_system
from repro.hpcwhisk.lengths import SET_A1, SET_C2
from repro.scenarios import Param, ScenarioResult, ScenarioSpec, register
from repro.scenarios.presets import FULL, QUICK, SMOKE
from repro.workloads.gatling import GatlingClient, GatlingReport
from repro.workloads.hpc_trace import trace_to_prime_jobs
from repro.workloads.idleness import IdlenessTraceGenerator


@dataclass
class DayConfig:
    """Parameters of one experiment day."""

    model: SupplyModel = SupplyModel.FIB
    seed: int = 317
    horizon: float = 24 * 3600.0
    num_nodes: int = 300
    #: idle-supply scale; defaults reproduce the two days' supply gap
    intensity_scale: Optional[float] = None
    #: idle-window length scale; defaults reproduce each day's regime
    length_scale: Optional[float] = None
    #: supply-outage share (None = per-model default: the fib day saw
    #: essentially no zero-available time, the var day plenty)
    outage_share: Optional[float] = None
    #: floor on idle supply (None = per-model default)
    min_intensity: Optional[float] = None
    #: scheduler tunables (None = per-model defaults, see resolved_scheduler)
    scheduler: Optional["SchedulerConfig"] = None
    #: Gatling request rate (paper: 10 QPS against 100 sleep functions)
    qps: float = 10.0
    num_functions: int = 100
    function_duration: float = 0.010
    #: run the load client at all (coverage-only runs switch it off)
    with_load: bool = True

    def resolved_scale(self) -> float:
        if self.intensity_scale is not None:
            return self.intensity_scale
        # Calibrated so the fib day averages ≈11.85 available nodes and
        # the var day ≈7.38 (the paper's measured supply gap).
        return 0.55 if self.model is SupplyModel.FIB else 1.2

    def resolved_length_scale(self) -> float:
        if self.length_scale is not None:
            return self.length_scale
        # Both experiment days showed longer worker periods than the
        # calibration week (fib median ready ≈ 11 min, var ≈ 7 min); the
        # var day's windows were visibly shorter than fib's.
        return 3.0 if self.model is SupplyModel.FIB else 1.3

    def resolved_outage_share(self) -> float:
        if self.outage_share is not None:
            return self.outage_share
        # fib day: zero available nodes in 0.6% of samples; var day: 9.44%.
        return 0.006 if self.model is SupplyModel.FIB else 0.06

    def resolved_min_intensity(self) -> float:
        if self.min_intensity is not None:
            return self.min_intensity
        # The fib day had a stable baseline of idle supply (Fig 5a).
        return 9.0 if self.model is SupplyModel.FIB else 0.0

    def resolved_scheduler(self) -> "SchedulerConfig":
        from repro.cluster.backfill import SchedulerConfig

        if self.scheduler is not None:
            return self.scheduler
        if self.model is SupplyModel.VAR:
            # Calibrated to the paper's var-day gap: flexible placement is
            # slower (90 s cadence, ≤4 starts/pass) and extensions grant
            # only part of the feasible window (Sec. V-B2's explanation).
            return SchedulerConfig(
                bf_flex_interval=90.0,
                max_flex_starts_per_pass=4,
                flex_extension_min=0.4,
            )
        return SchedulerConfig()


@dataclass
class DayResult:
    """Everything Tables II/III and Figs 5/6 need."""

    config: DayConfig
    #: clairvoyant upper bound on the same day's surface
    simulation: CoverageResult
    #: Slurm-level: sampled whisk-node counts
    slurm_workers: PercentileSummary
    #: Slurm-level: sampled available (idle ∪ whisk) counts
    available_workers: PercentileSummary
    #: whisk surface / available surface (the 90% / 68% headline)
    slurm_used_share: float
    #: share of samples with zero available nodes
    zero_available_share: float
    ow: OWLevelStates
    gatling: Optional[GatlingReport]
    ready_periods: Dict[str, float]
    #: per-minute Fig 5b/6b series (successful/failed/lost/rejected)
    per_minute: Dict[str, np.ndarray] = field(default_factory=dict)
    #: sampled count series for Fig 5a/6a and Fig 5c/6c
    series: Dict[str, np.ndarray] = field(default_factory=dict)

    def render(self) -> str:
        name = "II (fib)" if self.config.model is SupplyModel.FIB else "III (var)"
        table = render_table23(
            f"TABLE {name}: three-perspective comparison",
            self.simulation,
            self.slurm_workers,
            self.slurm_used_share,
            self.ow.warmup,
            self.ow.healthy,
            self.ow.irresponsive,
        )
        lines = [table, ""]
        if self.gatling is not None:
            report = self.gatling
            lines += [
                f"requests total           : {report.total}",
                f"accepted by controller   : {report.invoked_share * 100:.2f}%",
                f"success of accepted      : {report.success_share_of_invoked * 100:.2f}%",
                f"median response time     : {report.response_time_percentile(50) * 1000:.0f} ms",
            ]
        lines += [
            f"avg available nodes      : {self.available_workers.avg:.2f}",
            f"zero-available share     : {self.zero_available_share * 100:.2f}%",
            f"invoker ready period med : {self.ready_periods.get('median', float('nan')) / 60:.1f} min",
            f"controller outage total  : {self.ow.total_outage() / 60:.0f} min",
            f"longest outage           : {self.ow.longest_outage() / 60:.1f} min",
        ]
        return "\n".join(lines)


def run_day(config: Optional[DayConfig] = None) -> DayResult:
    """Run one full experiment day and analyse it."""
    config = config or DayConfig()
    length_set = SET_A1 if config.model is SupplyModel.FIB else SET_C2
    whisk_config = HPCWhiskConfig(supply_model=config.model, length_set=SET_A1)
    system = build_system(
        whisk_config,
        SlurmConfig(num_nodes=config.num_nodes, scheduler=config.resolved_scheduler()),
        seed=config.seed,
    )
    env = system.env

    # Prime workload: trace replay of a generated idleness day.
    trace_rng = system.streams.stream("trace")
    trace = IdlenessTraceGenerator(
        trace_rng,
        num_nodes=config.num_nodes,
        intensity_scale=config.resolved_scale(),
        length_scale=config.resolved_length_scale(),
        outage_share=config.resolved_outage_share(),
        min_intensity=config.resolved_min_intensity(),
    ).generate(config.horizon)
    workload = trace_to_prime_jobs(trace, system.streams.stream("lead"))
    workload.submit_all(env, system.slurm)

    # Load client.
    gatling: Optional[GatlingClient] = None
    if config.with_load:
        functions = sleep_functions(config.num_functions, config.function_duration)
        for function in functions:
            system.controller.deploy(function)
        gatling = GatlingClient(
            env,
            system.client,
            [f.name for f in functions],
            rate_per_second=config.qps,
            duration=config.function_duration,
            rng=system.streams.stream("gatling"),
        )
        gatling.start(config.horizon)

    sampler = SlurmSampler(env, system.slurm, system.streams.stream("sampler"))
    env.run(until=config.horizon)
    sampler.stop()
    system.manager.stop()

    return _analyse(config, system, sampler, gatling, length_set)


def _analyse(
    config: DayConfig,
    system: HPCWhiskSystem,
    sampler: SlurmSampler,
    gatling: Optional[GatlingClient],
    length_set,
) -> DayResult:
    samples = sampler.log.samples
    horizon = config.horizon

    available = intervals_by_node(samples, "available", end_time=horizon)
    whisk_counts = sampler.log.whisk_counts()
    available_counts = sampler.log.available_counts()
    idle_counts = sampler.log.idle_counts()

    total_available = float(available_counts.sum())
    slurm_used_share = (
        float(whisk_counts.sum()) / total_available if total_available else 0.0
    )

    simulation = CoverageSimulator().run(available, length_set, horizon=horizon)

    timelines = [t for t in system.pilot_timelines if t.job_started_at < horizon]
    ow = ow_level_states(timelines, horizon)

    per_minute: Dict[str, np.ndarray] = {}
    report = None
    if gatling is not None:
        report = gatling.report
        per_minute = report.per_minute(horizon)

    from repro.analysis.metrics import time_weighted_counts

    warmup = CoverageSimulator().warmup
    sim_ready_intervals = [
        (start + min(warmup, end - start), end) for _node, start, end in simulation.jobs
    ]
    series = {
        "sample_times": np.array([s.time for s in samples]),
        "idle_counts": idle_counts,
        "whisk_counts": whisk_counts,
        "available_counts": available_counts,
        "ow_healthy_counts": ow.healthy_counts,
        "sim_ready_counts": time_weighted_counts(sim_ready_intervals, horizon),
    }

    return DayResult(
        config=config,
        simulation=simulation,
        slurm_workers=percentile_summary(whisk_counts),
        available_workers=percentile_summary(available_counts),
        slurm_used_share=slurm_used_share,
        zero_available_share=float(np.mean(available_counts == 0)),
        ow=ow,
        gatling=report,
        ready_periods=ready_period_stats(timelines),
        per_minute=per_minute,
        series=series,
    )


#: the paper's two experiment days were run with different root seeds
DAY_SEEDS = {"fib": 317, "var": 321}


@register(
    "day",
    help="experiment day (Tables II/III)",
    seed=lambda params: DAY_SEEDS[params["model"]],
    seed_help="per-model: fib 317, var 321",
    workload="gatling",
    params=(
        Param("model", str, "fib", choices=("fib", "var"),
              spec_field="supply", help="pilot supply model"),
        Param("hours", float, FULL.day / 3600.0,
              scale={"quick": QUICK.day / 3600.0, "smoke": SMOKE.day / 3600.0},
              spec_field="horizon", to_spec=lambda h: h * 3600.0,
              help="experiment length in hours"),
        Param("nodes", int, FULL.day_nodes,
              scale={"quick": QUICK.day_nodes, "smoke": SMOKE.day_nodes},
              spec_field="nodes", help="cluster size"),
        Param("qps", float, 10.0, help="Gatling request rate"),
        Param("no_load", bool, False, spec_field="workload",
              to_spec=lambda v: "none" if v else "gatling",
              help="skip the Gatling load client"),
        Param("plot", bool, False, sweepable=False, help="render ASCII figures"),
    ),
)
def day_scenario(spec: ScenarioSpec) -> ScenarioResult:
    model = SupplyModel.FIB if spec.supply == "fib" else SupplyModel.VAR
    result = run_day(
        DayConfig(
            model=model,
            seed=spec.seed,
            horizon=spec.horizon,
            num_nodes=spec.nodes,
            qps=spec.params["qps"],
            with_load=not spec.params["no_load"],
        )
    )
    metrics = {
        "coverage": result.slurm_used_share,
        "sim_ready_share": result.simulation.ready_share,
        "sim_used_share": result.simulation.used_share,
        "avg_whisk_nodes": result.slurm_workers.avg,
        "avg_available_nodes": result.available_workers.avg,
        "avg_healthy_invokers": result.ow.healthy.avg,
        "zero_available_share": result.zero_available_share,
        "ready_period_median_s": result.ready_periods.get("median", float("nan")),
        "outage_total_s": result.ow.total_outage(),
        "longest_outage_s": result.ow.longest_outage(),
    }
    if result.gatling is not None:
        metrics.update(
            requests_total=float(result.gatling.total),
            accepted_share=result.gatling.invoked_share,
            success_of_accepted_share=result.gatling.success_share_of_invoked,
            median_response_s=result.gatling.response_time_percentile(50),
        )
    parts = [result.render()]
    if spec.params["plot"]:
        from repro.analysis.figures import ascii_timeseries

        parts.append(ascii_timeseries(
            result.series["sample_times"], result.series["whisk_counts"],
            title=f"Fig {'5a' if spec.supply == 'fib' else '6a'} — "
                  "HPC-Whisk worker jobs (Slurm-level)",
        ))
    return ScenarioResult(
        spec=spec, metrics=metrics, text="\n".join(parts),
        artifacts={"result": result},
    )
