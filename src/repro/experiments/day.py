"""The 24-hour production experiments (Tables II/III, Figs 5/6, Sec. V-C).

One run assembles the full stack — cluster + prime trace replay + the
chosen pilot supply manager + the FaaS middleware + a constant-rate
Gatling client — and measures it from the paper's three perspectives.

Paper anchors:

========================  ==========  ==========
metric                    fib (3/17)  var (3/21)
========================  ==========  ==========
avg available nodes          11.85       7.38
coverage (Slurm-level)       90%         68%
coverage (clairvoyant)       92%         84%
avg healthy invokers         10.39       4.96
requests accepted            95.29%      78.28%
success of accepted          95.19%      96.99%
median response (Gatling)    865 ms      1227 ms
========================  ==========  ==========

The two days differed materially in idle supply; ``intensity_scale``
reproduces that (DESIGN.md §7).  ``num_nodes`` defaults to 300 — the
idleness process is calibrated in *absolute* node counts, so the harvest
dynamics are unchanged versus a 2,239-node backdrop while the prime-job
replay stays cheap; pass 2239 for the full-size cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.analysis.coverage import CoverageResult
from repro.analysis.metrics import PercentileSummary
from repro.analysis.owlog import OWLevelStates
from repro.analysis.report import render_table23
from repro.api import (
    ClusterSpec,
    MiddlewareSpec,
    ProbeSpec,
    SimulationReport,
    Stack,
    SupplySpec,
    WorkloadSpec,
)
from repro.cluster.backfill import SchedulerConfig
from repro.hpcwhisk.config import SupplyModel
from repro.scenarios import Param, ScenarioResult, ScenarioSpec, register
from repro.scenarios.presets import FULL, QUICK, SMOKE
from repro.workloads.gatling import GatlingReport


@dataclass
class DayConfig:
    """Parameters of one experiment day."""

    model: SupplyModel = SupplyModel.FIB
    seed: int = 317
    horizon: float = 24 * 3600.0
    num_nodes: int = 300
    #: idle-supply scale; defaults reproduce the two days' supply gap
    intensity_scale: Optional[float] = None
    #: idle-window length scale; defaults reproduce each day's regime
    length_scale: Optional[float] = None
    #: supply-outage share (None = per-model default: the fib day saw
    #: essentially no zero-available time, the var day plenty)
    outage_share: Optional[float] = None
    #: floor on idle supply (None = per-model default)
    min_intensity: Optional[float] = None
    #: scheduler tunables (None = per-model defaults, see resolved_scheduler)
    scheduler: Optional[SchedulerConfig] = None
    #: Gatling request rate (paper: 10 QPS against 100 sleep functions)
    qps: float = 10.0
    num_functions: int = 100
    function_duration: float = 0.010
    #: run the load client at all (coverage-only runs switch it off)
    with_load: bool = True

    def resolved_scale(self) -> float:
        if self.intensity_scale is not None:
            return self.intensity_scale
        # Calibrated so the fib day averages ≈11.85 available nodes and
        # the var day ≈7.38 (the paper's measured supply gap).
        return 0.55 if self.model is SupplyModel.FIB else 1.2

    def resolved_length_scale(self) -> float:
        if self.length_scale is not None:
            return self.length_scale
        # Both experiment days showed longer worker periods than the
        # calibration week (fib median ready ≈ 11 min, var ≈ 7 min); the
        # var day's windows were visibly shorter than fib's.
        return 3.0 if self.model is SupplyModel.FIB else 1.3

    def resolved_outage_share(self) -> float:
        if self.outage_share is not None:
            return self.outage_share
        # fib day: zero available nodes in 0.6% of samples; var day: 9.44%.
        return 0.006 if self.model is SupplyModel.FIB else 0.06

    def resolved_min_intensity(self) -> float:
        if self.min_intensity is not None:
            return self.min_intensity
        # The fib day had a stable baseline of idle supply (Fig 5a).
        return 9.0 if self.model is SupplyModel.FIB else 0.0

    def resolved_scheduler(self) -> SchedulerConfig:
        if self.scheduler is not None:
            return self.scheduler
        if self.model is SupplyModel.VAR:
            # Calibrated to the paper's var-day gap: flexible placement is
            # slower (90 s cadence, ≤4 starts/pass) and extensions grant
            # only part of the feasible window (Sec. V-B2's explanation).
            return SchedulerConfig(
                bf_flex_interval=90.0,
                max_flex_starts_per_pass=4,
                flex_extension_min=0.4,
            )
        return SchedulerConfig()


@dataclass
class DayResult:
    """Everything Tables II/III and Figs 5/6 need."""

    config: DayConfig
    #: clairvoyant upper bound on the same day's surface
    simulation: CoverageResult
    #: Slurm-level: sampled whisk-node counts
    slurm_workers: PercentileSummary
    #: Slurm-level: sampled available (idle ∪ whisk) counts
    available_workers: PercentileSummary
    #: whisk surface / available surface (the 90% / 68% headline)
    slurm_used_share: float
    #: share of samples with zero available nodes
    zero_available_share: float
    ow: OWLevelStates
    gatling: Optional[GatlingReport]
    ready_periods: Dict[str, float]
    #: per-minute Fig 5b/6b series (successful/failed/lost/rejected)
    per_minute: Dict[str, np.ndarray] = field(default_factory=dict)
    #: sampled count series for Fig 5a/6a and Fig 5c/6c
    series: Dict[str, np.ndarray] = field(default_factory=dict)

    def render(self) -> str:
        name = "II (fib)" if self.config.model is SupplyModel.FIB else "III (var)"
        table = render_table23(
            f"TABLE {name}: three-perspective comparison",
            self.simulation,
            self.slurm_workers,
            self.slurm_used_share,
            self.ow.warmup,
            self.ow.healthy,
            self.ow.irresponsive,
        )
        lines = [table, ""]
        if self.gatling is not None:
            report = self.gatling
            lines += [
                f"requests total           : {report.total}",
                f"accepted by controller   : {report.invoked_share * 100:.2f}%",
                f"success of accepted      : {report.success_share_of_invoked * 100:.2f}%",
                f"median response time     : {report.response_time_percentile(50) * 1000:.0f} ms",
            ]
        lines += [
            f"avg available nodes      : {self.available_workers.avg:.2f}",
            f"zero-available share     : {self.zero_available_share * 100:.2f}%",
            f"invoker ready period med : {self.ready_periods.get('median', float('nan')) / 60:.1f} min",
            f"controller outage total  : {self.ow.total_outage() / 60:.0f} min",
            f"longest outage           : {self.ow.longest_outage() / 60:.1f} min",
        ]
        return "\n".join(lines)


def day_stack(config: DayConfig) -> Stack:
    """The experiment day as a declarative :class:`~repro.api.Stack`.

    This *is* the paper's composition, spelled out: Slurm cluster +
    pilot supply + OpenWhisk middleware + prime-trace replay + Gatling
    load, measured from the three perspectives (Slurm sampler,
    clairvoyant coverage, OW-level log) plus the client's own report.
    """
    workloads = [
        WorkloadSpec(
            "idleness-trace",
            nodes=config.num_nodes,
            intensity_scale=config.resolved_scale(),
            length_scale=config.resolved_length_scale(),
            outage_share=config.resolved_outage_share(),
            min_intensity=config.resolved_min_intensity(),
        )
    ]
    probes = [
        ProbeSpec("slurm-sampler"),
        ProbeSpec(
            "coverage",
            length_set="A1" if config.model is SupplyModel.FIB else "C2",
        ),
        ProbeSpec("ow-log"),
    ]
    if config.with_load:
        workloads.append(
            WorkloadSpec(
                "gatling",
                qps=config.qps,
                functions=config.num_functions,
                duration=config.function_duration,
            )
        )
        probes.append(ProbeSpec("gatling-report"))
    return Stack(
        cluster=ClusterSpec(
            nodes=config.num_nodes, scheduler=config.resolved_scheduler()
        ),
        supply=SupplySpec(config.model.value),
        middleware=MiddlewareSpec(),
        workloads=tuple(workloads),
        probes=tuple(probes),
        seed=config.seed,
        horizon=config.horizon,
        name=f"day-{config.model.value}",
    )


def run_day(config: Optional[DayConfig] = None) -> DayResult:
    """Run one full experiment day and analyse it."""
    config = config or DayConfig()
    report = day_stack(config).run()
    return day_result_from_report(config, report)


def day_result_from_report(
    config: DayConfig, report: SimulationReport
) -> DayResult:
    """Assemble the Tables II/III result view from the probe artifacts."""
    from repro.analysis.metrics import time_weighted_counts

    sampler = report.artifacts["slurm-sampler"]
    coverage = report.artifacts["coverage"]
    ow_log = report.artifacts["ow-log"]
    gatling: Optional[GatlingReport] = report.artifacts.get("gatling-report")
    horizon = config.horizon

    per_minute: Dict[str, np.ndarray] = {}
    if gatling is not None:
        per_minute = gatling.per_minute(horizon)

    simulation = coverage.simulation
    sim_ready_intervals = [
        (start + min(coverage.warmup, end - start), end)
        for _node, start, end in simulation.jobs
    ]
    series = {
        "sample_times": np.array([s.time for s in sampler.log.samples]),
        "idle_counts": sampler.idle_counts,
        "whisk_counts": sampler.whisk_counts,
        "available_counts": sampler.available_counts,
        "ow_healthy_counts": ow_log.ow.healthy_counts,
        "sim_ready_counts": time_weighted_counts(sim_ready_intervals, horizon),
    }

    return DayResult(
        config=config,
        simulation=simulation,
        slurm_workers=sampler.slurm_workers,
        available_workers=sampler.available_workers,
        slurm_used_share=sampler.slurm_used_share,
        zero_available_share=sampler.zero_available_share,
        ow=ow_log.ow,
        gatling=gatling,
        ready_periods=ow_log.ready_periods,
        per_minute=per_minute,
        series=series,
    )


#: the paper's two experiment days were run with different root seeds
DAY_SEEDS = {"fib": 317, "var": 321}


@register(
    "day",
    help="experiment day (Tables II/III)",
    seed=lambda params: DAY_SEEDS[params["model"]],
    seed_help="per-model: fib 317, var 321",
    workload="gatling",
    params=(
        Param("model", str, "fib", choices=("fib", "var"),
              spec_field="supply", help="pilot supply model"),
        Param("hours", float, FULL.day / 3600.0,
              scale={"quick": QUICK.day / 3600.0, "smoke": SMOKE.day / 3600.0},
              spec_field="horizon", to_spec=lambda h: h * 3600.0,
              help="experiment length in hours"),
        Param("nodes", int, FULL.day_nodes,
              scale={"quick": QUICK.day_nodes, "smoke": SMOKE.day_nodes},
              spec_field="nodes", help="cluster size"),
        Param("qps", float, 10.0, help="Gatling request rate"),
        Param("no_load", bool, False, spec_field="workload",
              to_spec=lambda v: "none" if v else "gatling",
              help="skip the Gatling load client"),
        Param("plot", bool, False, sweepable=False, help="render ASCII figures"),
    ),
)
def day_scenario(spec: ScenarioSpec) -> ScenarioResult:
    model = SupplyModel.FIB if spec.supply == "fib" else SupplyModel.VAR
    config = DayConfig(
        model=model,
        seed=spec.seed,
        horizon=spec.horizon,
        num_nodes=spec.nodes,
        qps=spec.params["qps"],
        with_load=not spec.params["no_load"],
    )
    report = day_stack(config).run()
    result = day_result_from_report(config, report)
    # The probes' merged output *is* the scenario's metric set — the
    # composed-stack path and the registered scenario agree by construction.
    metrics = dict(report.metrics)
    parts = [result.render()]
    if spec.params["plot"]:
        from repro.analysis.figures import ascii_timeseries

        parts.append(ascii_timeseries(
            result.series["sample_times"], result.series["whisk_counts"],
            title=f"Fig {'5a' if spec.supply == 'fib' else '6a'} — "
                  "HPC-Whisk worker jobs (Slurm-level)",
        ))
    return ScenarioResult(
        spec=spec, metrics=metrics, text="\n".join(parts),
        artifacts={"result": result},
    )
