"""Long-horizon idleness characterization (the paper's future work).

Sec. VII: *"it would be interesting to evaluate and characterize the
quantity of unused resources in longer periods of time, to identify the
potential patterns in the workload which could be of value for the
HPC-Whisk job manager."*

This experiment generates a multi-week trace with optional diurnal
structure, detects the pattern (hour-of-day profile + autocorrelation at
the 24-hour lag), and quantifies how much a pattern-aware pilot supply
could gain: the coverage simulator is run with a small length set during
predicted-lean hours and a long-biased set during predicted-rich hours,
versus the static A1 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.coverage import CoverageResult, CoverageSimulator
from repro.analysis.report import render_kv
from repro.hpcwhisk.lengths import SET_A1, SET_C1
from repro.scenarios import Param, ScenarioResult, ScenarioSpec, register
from repro.workloads.idleness import IdlenessTrace, IdlenessTraceGenerator

DAY = 24 * 3600.0


@dataclass
class LongTermResult:
    trace: IdlenessTrace
    #: mean idle count per hour-of-day (24 values)
    hourly_profile: np.ndarray
    #: lag-24h autocorrelation of the hourly-mean idle counts
    daily_autocorrelation: float
    static_coverage: CoverageResult
    adaptive_ready_share: float
    stats: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        return render_kv("Long-term idleness characterization", self.stats)


def _hourly_means(times: np.ndarray, counts: np.ndarray) -> np.ndarray:
    hours = ((times % DAY) // 3600.0).astype(int)
    profile = np.zeros(24)
    for hour in range(24):
        mask = hours == hour
        profile[hour] = counts[mask].mean() if mask.any() else 0.0
    return profile


def _lag_day_autocorrelation(times: np.ndarray, counts: np.ndarray) -> float:
    """Autocorrelation of hour-resolution means at a 24-hour lag."""
    bins = (times // 3600.0).astype(int)
    n_bins = bins.max() + 1
    means = np.zeros(n_bins)
    for b in range(n_bins):
        mask = bins == b
        if mask.any():
            means[b] = counts[mask].mean()
    if n_bins <= 24:
        return 0.0
    a, b = means[:-24], means[24:]
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def run_longterm(
    seed: int = 2022,
    weeks: int = 2,
    num_nodes: int = 512,
    diurnal_amplitude: float = 0.6,
) -> LongTermResult:
    """Generate, characterize, and evaluate pattern-aware supply."""
    rng = np.random.default_rng(seed)
    horizon = weeks * 7 * DAY
    trace = IdlenessTraceGenerator(
        rng,
        num_nodes=num_nodes,
        diurnal_amplitude=diurnal_amplitude,
        diurnal_phase=-6 * 3600.0,  # richest supply in the small hours
    ).generate(horizon)
    times, counts = trace.count_series(60.0)
    profile = _hourly_means(times, counts)
    autocorrelation = _lag_day_autocorrelation(times, counts)

    intervals: Dict[str, List[Tuple[float, float]]] = {}
    for period in trace.periods:
        intervals.setdefault(period.node, []).append((period.start, period.end))

    simulator = CoverageSimulator()
    static = simulator.run(intervals, SET_A1, horizon=horizon)

    # Pattern-aware supply: during the leanest 8 hours of the daily profile
    # use the short set C1 (fast turnover, nothing long will fit anyway);
    # during the rest use A1.  Evaluate by splitting intervals by start hour.
    lean_hours = set(np.argsort(profile)[:8].tolist())
    lean_intervals: Dict[str, List[Tuple[float, float]]] = {}
    rich_intervals: Dict[str, List[Tuple[float, float]]] = {}
    for node, node_intervals in intervals.items():
        for start, end in node_intervals:
            hour = int((start % DAY) // 3600.0)
            bucket = lean_intervals if hour in lean_hours else rich_intervals
            bucket.setdefault(node, []).append((start, end))
    lean = simulator.run(lean_intervals, SET_C1, horizon=horizon)
    rich = simulator.run(rich_intervals, SET_A1, horizon=horizon)
    total_surface = lean.total_surface + rich.total_surface
    adaptive_ready = (
        (lean.ready_surface + rich.ready_surface) / total_surface
        if total_surface
        else 0.0
    )

    result = LongTermResult(
        trace=trace,
        hourly_profile=profile,
        daily_autocorrelation=autocorrelation,
        static_coverage=static,
        adaptive_ready_share=adaptive_ready,
    )
    result.stats = {
        "weeks": float(weeks),
        "periods": float(len(trace.periods)),
        "daily_autocorrelation": autocorrelation,
        "profile_peak_to_trough": float(profile.max() / max(profile.min(), 1e-9)),
        "static_ready_share": static.ready_share,
        "adaptive_ready_share": adaptive_ready,
        "adaptive_gain": adaptive_ready - static.ready_share,
    }
    return result


@register(
    "longterm",
    help="multi-week pattern study",
    seed=2022,
    workload="idleness-trace",
    params=(
        Param("weeks", int, 2, scale={"quick": 1, "smoke": 1},
              spec_field="horizon", to_spec=lambda w: w * 7 * DAY,
              help="trace length in weeks"),
        Param("nodes", int, 512, scale={"quick": 256, "smoke": 64},
              spec_field="nodes", help="cluster size"),
        Param("amplitude", float, 0.6, help="diurnal amplitude of idle supply"),
    ),
)
def longterm_scenario(spec: ScenarioSpec) -> ScenarioResult:
    result = run_longterm(seed=spec.seed, weeks=spec.params["weeks"],
                          num_nodes=spec.nodes,
                          diurnal_amplitude=spec.params["amplitude"])
    return ScenarioResult(
        spec=spec, metrics=dict(result.stats), text=result.render(),
        artifacts={"result": result},
    )
