"""The federated-fleet experiment: two asymmetric clusters, one plane.

The paper deploys HPC-Whisk inside a single Slurm cluster; real sites
run fleets.  This scenario hosts **two heterogeneous member clusters**
— a large ``alpha`` and a small ``beta`` — under one federated control
plane, drives them with diurnal idle supply plus a constant-rate
Gatling client, and takes ``beta`` down entirely for a mid-run outage
window.  The router policy under test steers activations across the
members above each cluster's load balancer:

* ``weighted-idle`` follows the harvested capacity,
* ``affinity-first`` keeps each function's warm containers on its home
  cluster until an outage forces it elsewhere,
* ``failover`` sends everything to ``alpha`` unless ``alpha`` is dry.

Measured from the usual perspectives — per-member and fleet-merged
Slurm sampling, OW-level worker accounting, the client's own report —
plus the federation's routing ledger (``fed_routed@…``/503s), which is
where the policies differ.
"""

from __future__ import annotations

from typing import List

from repro.api import (
    ClusterSpec,
    MiddlewareSpec,
    ProbeSpec,
    RouterSpec,
    SimulationReport,
    Stack,
    SupplySpec,
    WorkloadSpec,
)
from repro.scenarios import Param, ScenarioResult, ScenarioSpec, register

#: the paper-less defaults: a 200-node primary + a 100-node edge member
FULL_NODES, FULL_EDGE = 200, 100
QUICK_NODES, QUICK_EDGE = 96, 48
SMOKE_NODES, SMOKE_EDGE = 16, 8

#: outage window (as fractions of the horizon) the failover test uses
OUTAGE_START_FRAC, OUTAGE_DURATION_FRAC = 0.4, 0.2

ROUTER_POLICIES = ("weighted-idle", "affinity-first", "failover")


def federation_stack(
    nodes: int,
    edge_nodes: int,
    policy: str,
    horizon: float,
    qps: float,
    seed: int,
    with_failover: bool = True,
) -> Stack:
    """The two-member federation as a declarative stack."""
    workloads: List[WorkloadSpec] = [
        WorkloadSpec(
            "idleness-trace",
            intensity_scale=0.8,
            length_scale=1.5,
            outage_share=0.0,
            min_intensity=max(2.0, nodes / 8.0),
            diurnal_amplitude=0.5,
        ),
        WorkloadSpec("gatling", qps=qps, functions=50),
    ]
    if with_failover:
        workloads.append(
            WorkloadSpec(
                "failover-window",
                cluster="beta",
                start=OUTAGE_START_FRAC * horizon,
                duration=OUTAGE_DURATION_FRAC * horizon,
            )
        )
    return Stack(
        clusters=(
            ClusterSpec(nodes=nodes, cluster_id="alpha"),
            ClusterSpec(nodes=edge_nodes, cluster_id="beta"),
        ),
        supply=SupplySpec("fib"),
        middleware=MiddlewareSpec(),
        router=RouterSpec(policy),
        workloads=tuple(workloads),
        probes=(
            ProbeSpec("slurm-sampler"),
            ProbeSpec("ow-log"),
            ProbeSpec("gatling-report"),
            ProbeSpec("accounting"),
            ProbeSpec("federation-stats"),
        ),
        seed=seed,
        horizon=horizon,
        name=f"federation-{policy}",
    )


def render_federation(report: SimulationReport, policy: str) -> str:
    """Fleet + per-member text view of one federated run."""
    m = report.metrics
    members = ("alpha", "beta")
    lines = [
        f"FEDERATION — two asymmetric clusters, router {policy!r}",
        "",
        f"{'metric':<26} {'fleet':>10} "
        + " ".join(f"{cid:>10}" for cid in members),
    ]

    def row(
        label: str,
        key: str,
        scale: float = 1.0,
        digits: int = 2,
        fleet: float = None,
    ) -> str:
        if fleet is None:
            fleet = m.get(key, float("nan"))
        cells = [
            m.get(f"{key}@{cid}", float("nan")) * scale for cid in members
        ]
        return (
            f"{label:<26} {fleet * scale:>10.{digits}f} "
            + " ".join(f"{cell:>10.{digits}f}" for cell in cells)
        )

    lines.append(row("coverage %", "coverage", 100.0))
    lines.append(row("avg whisk nodes", "avg_whisk_nodes"))
    lines.append(row("avg available nodes", "avg_available_nodes"))
    lines.append(row("prime jobs", "prime_jobs_total", digits=0))
    lines.append(row("prime mean wait s", "prime_mean_wait_s", digits=1))
    lines.append(row("whisk node-hours", "whisk_node_hours"))
    lines.append(
        row("activations routed", "fed_routed", digits=0,
            fleet=m.get("fed_routed_total", float("nan")))
    )
    lines.append(row("routed share %", "fed_routed_share", 100.0, fleet=1.0))
    lines += [
        "",
        f"requests total           : {m['requests_total']:.0f}",
        f"accepted by controller   : {m['accepted_share'] * 100:.2f}%",
        f"success of accepted      : {m['success_of_accepted_share'] * 100:.2f}%",
        f"median response time     : {m['median_response_s'] * 1000:.0f} ms",
        f"rejected 503             : {m['fed_rejected_503']:.0f}",
        f"controller outage total  : {m['outage_total_s'] / 60:.1f} min",
        f"avg healthy invokers     : {m['avg_healthy_invokers']:.2f}",
    ]
    return "\n".join(lines)


@register(
    "federation",
    help="two-cluster federated fleet (router policies + failover)",
    seed=2026,
    workload="gatling",
    params=(
        Param("policy", str, "weighted-idle", choices=ROUTER_POLICIES,
              help="cross-cluster routing policy"),
        Param("hours", float, 24.0, scale={"quick": 3.0, "smoke": 0.25},
              spec_field="horizon", to_spec=lambda h: h * 3600.0,
              help="experiment length in hours"),
        Param("nodes", int, FULL_NODES,
              scale={"quick": QUICK_NODES, "smoke": SMOKE_NODES},
              spec_field="nodes", help="primary (alpha) cluster size"),
        Param("edge_nodes", int, FULL_EDGE,
              scale={"quick": QUICK_EDGE, "smoke": SMOKE_EDGE},
              help="edge (beta) cluster size"),
        Param("qps", float, 10.0, help="Gatling request rate"),
        Param("no_failover", bool, False,
              help="skip the mid-run beta outage window"),
    ),
)
def federation_scenario(spec: ScenarioSpec) -> ScenarioResult:
    policy = spec.params["policy"]
    report = federation_stack(
        nodes=spec.nodes,
        edge_nodes=spec.params["edge_nodes"],
        policy=policy,
        horizon=spec.horizon,
        qps=spec.params["qps"],
        seed=spec.seed,
        with_failover=not spec.params["no_failover"],
    ).run()
    return ScenarioResult(
        spec=spec,
        metrics=dict(report.metrics),
        text=render_federation(report, policy),
        artifacts={"report": report},
    )


def run_federation(policy: str = "weighted-idle", hours: float = 3.0):
    """Library entry point mirroring the other experiment modules."""
    from repro.scenarios import REGISTRY

    return REGISTRY.run("federation", {"policy": policy, "hours": hours})
