"""Measurement and analysis: the paper's three perspectives (Sec. IV-A).

1. **Slurm-level** — :mod:`repro.analysis.sampler` polls node states every
   ~10 s (with the measured response-latency jitter) and
   :mod:`repro.analysis.idle_periods` reconstructs idle intervals from the
   samples.
2. **OpenWhisk-level** — :mod:`repro.analysis.owlog` combines the
   controller's second-accurate event log with pilot timelines into
   warm-up / healthy / irresponsive state series.
3. **Simulation** — :mod:`repro.analysis.coverage` runs the a-posteriori,
   clairvoyant greedy packing that upper-bounds achievable coverage
   (Tables I–III).

:mod:`repro.analysis.metrics` holds the shared statistics toolbox;
:mod:`repro.analysis.report` renders the paper's table layouts.
"""

from repro.analysis.metrics import (
    cdf,
    interval_coverage,
    percentile_summary,
    time_weighted_counts,
)
from repro.analysis.sampler import SlurmSampler, SlurmSample
from repro.analysis.idle_periods import samples_to_intervals, intervals_by_node
from repro.analysis.coverage import (
    CoverageResult,
    CoverageSimulator,
    greedy_fill_window,
)
from repro.analysis.owlog import OWLevelStates, ow_level_states
from repro.analysis.figures import ascii_cdf, ascii_timeseries, histogram, sparkline
from repro.analysis.report import (
    render_table1,
    render_table23,
)

__all__ = [
    "CoverageResult",
    "CoverageSimulator",
    "OWLevelStates",
    "SlurmSample",
    "SlurmSampler",
    "ascii_cdf",
    "ascii_timeseries",
    "histogram",
    "sparkline",
    "cdf",
    "greedy_fill_window",
    "interval_coverage",
    "intervals_by_node",
    "ow_level_states",
    "percentile_summary",
    "render_table1",
    "render_table23",
    "samples_to_intervals",
    "time_weighted_counts",
]
