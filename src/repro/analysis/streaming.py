"""Streaming (single-pass, O(1)-memory) aggregates for analysis probes.

The analysis layer historically re-scanned full sample histories
(``array('d')`` buffers, lists of :class:`SlurmSample`) after every run
to produce its metrics.  That is exact but requires the history to be
resident — a structural blocker for trace-scale runs where a sampler
can emit millions of samples.  This module provides the running
aggregates that make the same metrics computable incrementally, sample
by sample, with the history optionally discarded:

:class:`StreamingStats`
    count / sum / min / max plus Welford mean-variance for arbitrary
    float streams, with an optional deterministic reservoir sketch for
    quantiles.  The running ``mean`` is ``total/count`` — for integer
    -valued streams (every partial sum below 2**53) this is *bit-equal*
    to the numpy re-scan mean.

:class:`CountSeries`
    the specialisation the Slurm-level metrics actually need: streams
    of small non-negative integer counts (idle/whisk/available node
    counts).  Keeps an exact value histogram, so percentiles are
    **exact** — :meth:`CountSeries.summary` reconstructs a sorted array
    from the histogram (``O(distinct values)`` resident state) and
    feeds it through the same :func:`~repro.analysis.metrics.
    percentile_summary` used by the re-scan path, making streaming and
    re-scan results byte-identical.

:class:`ReservoirSketch`
    a fixed-size uniform reservoir over a float stream, exact while the
    stream fits (``seen <= capacity``) and an unbiased sample beyond.
    The PRNG is a seeded xorshift64* — deterministic across runs and
    platforms, independent of global RNG state.

Exact re-scan stays available as a verification mode: probes that adopt
streaming aggregates re-derive their metrics from the retained history
and assert agreement when ``REPRO_VERIFY_METRICS=1`` is set.
"""

from __future__ import annotations

from math import sqrt
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.metrics import PercentileSummary, percentile_summary

_INF = float("inf")


class ReservoirSketch:
    """Deterministic fixed-size uniform reservoir over a float stream.

    Implements Algorithm R with a seeded xorshift64* generator: exact
    (holds every value) while ``seen <= capacity``, an unbiased uniform
    sample of the stream afterwards.  Determinism matters more than
    statistical finesse here — two identical runs must produce
    identical sketches, whatever else consumed the global RNG.
    """

    __slots__ = ("capacity", "values", "seen", "_state")

    def __init__(self, capacity: int = 512, seed: int = 0x9E3779B9) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self.values: List[float] = []
        self.seen = 0
        self._state = (seed or 1) & 0xFFFFFFFFFFFFFFFF

    def _rand_below(self, n: int) -> int:
        """Next xorshift64* draw reduced to ``[0, n)``."""
        x = self._state
        x ^= (x >> 12) & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x << 25)) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 27
        self._state = x
        return ((x * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF) % n

    def add(self, value: float) -> None:
        self.seen += 1
        if len(self.values) < self.capacity:
            self.values.append(value)
            return
        slot = self._rand_below(self.seen)
        if slot < self.capacity:
            self.values[slot] = value

    @property
    def exact(self) -> bool:
        """True while the sketch still holds every value seen."""
        return self.seen <= self.capacity

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (exact while :attr:`exact`)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self.values:
            return float("nan")
        return float(np.percentile(np.asarray(self.values, dtype=float), q * 100.0))

    def merge(self, other: "ReservoirSketch") -> None:
        """Fold another sketch into this one (deterministic, in place).

        Exact while the union fits the capacity; beyond that each side
        contributes an evenly-strided subsample proportional to how many
        values it has *seen* — deterministic (no RNG draw) so shard
        merges reproduce byte-for-byte, at the cost of being a
        systematic rather than uniform subsample.
        """
        if other.seen == 0:
            return
        combined_seen = self.seen + other.seen
        if len(self.values) + len(other.values) <= self.capacity:
            self.values = self.values + list(other.values)
        else:
            take_self = round(self.capacity * self.seen / combined_seen)
            take_self = min(len(self.values), max(0, take_self))
            take_other = min(len(other.values), self.capacity - take_self)
            take_self = min(len(self.values), self.capacity - take_other)
            self.values = _strided_subsample(self.values, take_self) + _strided_subsample(
                other.values, take_other
            )
        self.seen = combined_seen
        self._state = (
            (self._state ^ ((other._state * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF))
            or 1
        )


def _strided_subsample(values: List[float], k: int) -> List[float]:
    """``k`` evenly-strided elements of *values* (all of them if k >= len)."""
    n = len(values)
    if k >= n:
        return list(values)
    if k <= 0:
        return []
    return [values[(i * n) // k] for i in range(k)]


class StreamingStats:
    """Single-pass count/sum/min/max + Welford mean-variance.

    ``mean`` is ``total/count`` (the running sum, not the Welford mean):
    for integer-valued streams every partial sum is exact in float64, so
    it matches the re-scan ``np.mean`` bit for bit.  The Welford
    recurrence is kept for the *variance*, where the naive
    sum-of-squares form loses catastrophically.
    """

    __slots__ = ("count", "total", "min", "max", "_mean", "_m2", "sketch")

    def __init__(self, quantiles: bool = False, capacity: int = 512) -> None:
        self.count = 0
        self.total = 0.0
        self.min = _INF
        self.max = -_INF
        self._mean = 0.0
        self._m2 = 0.0
        self.sketch: Optional[ReservoirSketch] = (
            ReservoirSketch(capacity) if quantiles else None
        )

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.sketch is not None:
            self.sketch.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Population variance (``ddof=0``, matching ``np.var``)."""
        return self._m2 / self.count if self.count else float("nan")

    @property
    def std(self) -> float:
        return sqrt(self.variance) if self.count else float("nan")

    def quantile(self, q: float) -> float:
        if self.sketch is None:
            raise RuntimeError(
                "quantile sketch disabled; construct with quantiles=True"
            )
        return self.sketch.quantile(q)

    def merge(self, other: "StreamingStats") -> None:
        """Fold another stats object into this one (in place).

        Count, sum, min, max and the mean are exact; the variance uses
        the parallel (Chan et al.) combination of the Welford moments,
        also exact up to float rounding.  Sketches merge per
        :meth:`ReservoirSketch.merge` (exact while the union fits).
        """
        if other.count == 0:
            return
        if self.count == 0:
            self._mean = other._mean
            self._m2 = other._m2
        else:
            delta = other._mean - self._mean
            combined = self.count + other.count
            self._mean += delta * other.count / combined
            self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if self.sketch is not None and other.sketch is not None:
            self.sketch.merge(other.sketch)


class CountSeries:
    """Streaming aggregate over a series of non-negative integer counts.

    The resident state is an exact value histogram (``value -> how many
    samples``), which for node-count streams is tiny (bounded by the
    cluster size) however long the run.  Everything the Slurm-level
    metrics need falls out exactly: sums and means (integer arithmetic,
    exact in float64), the zero share, and — via :meth:`as_array` —
    exact percentiles through the very same code path the re-scan uses.
    """

    __slots__ = ("count", "total", "zeros", "histogram")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.zeros = 0
        self.histogram: Dict[int, int] = {}

    def add(self, value: int) -> None:
        self.count += 1
        self.total += value
        if value == 0:
            self.zeros += 1
        histogram = self.histogram
        histogram[value] = histogram.get(value, 0) + 1

    def merge(self, other: "CountSeries") -> None:
        """Fold another series into this one (exact: histograms add)."""
        self.count += other.count
        self.total += other.total
        self.zeros += other.zeros
        for value, hits in other.histogram.items():
            self.histogram[value] = self.histogram.get(value, 0) + hits

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def zero_share(self) -> float:
        """Fraction of samples equal to zero (0.0 on an empty series).

        Matches ``float(np.mean(values == 0))`` exactly: the boolean
        sum is an integer, and the division is the same float64 op.
        """
        return self.zeros / self.count if self.count else 0.0

    def as_array(self) -> np.ndarray:
        """The full sample multiset, reconstructed sorted by value.

        Order-independent statistics (percentiles, sums, means) over
        this array equal those over the original sample order.
        """
        if not self.count:
            return np.array([], dtype=np.int64)
        values = sorted(self.histogram)
        return np.repeat(
            np.asarray(values, dtype=np.int64),
            np.asarray([self.histogram[v] for v in values], dtype=np.int64),
        )

    def summary(self) -> PercentileSummary:
        """Exact 25-50-75p + mean, identical to the re-scan summary."""
        return percentile_summary(self.as_array())
