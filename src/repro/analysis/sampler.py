"""The Slurm-level monitoring poller (Sec. IV-A).

Repeatedly queries the controller for node states.  Faithful to the
paper's method: the poller waits a fixed 10 seconds between *receiving*
one response and *sending* the next request, and each request's response
latency follows the measured mixture (76.43% of gaps exactly 10 s, 23.26%
11–13 s, 0.31% longer).  The sample timestamp is the response time — the
ambiguity the authors describe is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.cluster.query import QueryLatencyModel, sinfo
from repro.cluster.slurmctld import SlurmController
from repro.sim import Environment, Interrupt


@dataclass(frozen=True)
class SlurmSample:
    """One logged cluster state."""

    time: float
    idle_nodes: Tuple[str, ...]
    whisk_nodes: Tuple[str, ...]

    @property
    def available_nodes(self) -> Tuple[str, ...]:
        """idle ∪ whisk — the joint "HPC-idle" surface baseline (Sec. V-B):
        had no pilot been supplied, these nodes would all be idle."""
        return tuple(sorted(set(self.idle_nodes) | set(self.whisk_nodes)))


@dataclass
class SamplerLog:
    """The full poll sequence plus derived statistics."""

    samples: List[SlurmSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def mean_gap(self) -> float:
        if len(self.samples) < 2:
            return float("nan")
        times = np.array([s.time for s in self.samples])
        return float(np.diff(times).mean())

    def idle_counts(self) -> np.ndarray:
        return np.array([len(s.idle_nodes) for s in self.samples])

    def whisk_counts(self) -> np.ndarray:
        return np.array([len(s.whisk_nodes) for s in self.samples])

    def available_counts(self) -> np.ndarray:
        return np.array([len(s.available_nodes) for s in self.samples])


class SlurmSampler:
    """Runs the polling loop against a simulated controller."""

    def __init__(
        self,
        env: Environment,
        controller: SlurmController,
        rng: np.random.Generator,
        pause: float = 10.0,
        whisk_partition: str = "whisk",
        exclude: Optional[Set[str]] = None,
    ) -> None:
        self.env = env
        self.controller = controller
        self.latency = QueryLatencyModel(rng)
        self.pause = pause
        self.whisk_partition = whisk_partition
        self.exclude = exclude or set()
        self.log = SamplerLog()
        self._proc = env.process(self._run())

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("stop")

    def _run(self):
        env = self.env
        try:
            while True:
                # Send the request; the response arrives after the latency.
                yield env.timeout(self.latency.sample())
                snapshot = sinfo(
                    self.controller,
                    whisk_partition=self.whisk_partition,
                    exclude=self.exclude,
                )
                self.log.samples.append(
                    SlurmSample(
                        time=env.now,
                        idle_nodes=snapshot.idle_nodes,
                        whisk_nodes=snapshot.whisk_nodes,
                    )
                )
                yield env.timeout(self.pause)
        except Interrupt:
            return
