"""The Slurm-level monitoring poller (Sec. IV-A).

Repeatedly queries the controller for node states.  Faithful to the
paper's method: the poller waits a fixed 10 seconds between *receiving*
one response and *sending* the next request, and each request's response
latency follows the measured mixture (76.43% of gaps exactly 10 s, 23.26%
11–13 s, 0.31% longer).  The sample timestamp is the response time — the
ambiguity the authors describe is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.analysis.streaming import CountSeries
from repro.cluster.query import QueryLatencyModel, sinfo
from repro.cluster.slurmctld import SlurmController
from repro.sim import Environment, Interrupt


@dataclass(frozen=True)
class SlurmSample:
    """One logged cluster state."""

    time: float
    idle_nodes: Tuple[str, ...]
    whisk_nodes: Tuple[str, ...]

    @property
    def available_nodes(self) -> Tuple[str, ...]:
        """idle ∪ whisk — the joint "HPC-idle" surface baseline (Sec. V-B):
        had no pilot been supplied, these nodes would all be idle."""
        return tuple(sorted(set(self.idle_nodes) | set(self.whisk_nodes)))


@dataclass
class SamplerLog:
    """The poll sequence plus streaming (single-pass) statistics.

    Every :meth:`add` folds the sample into running
    :class:`~repro.analysis.streaming.CountSeries` aggregates — the
    count-based metrics (sums, means, exact percentiles, zero share)
    never need the per-sample history.  The history itself is retained
    by default (interval reconstruction for the coverage packing and
    per-sample series still need it); trace-scale runs pass
    ``keep_history=False`` and keep only the O(1) aggregates.
    """

    samples: List[SlurmSample] = field(default_factory=list)
    keep_history: bool = True
    idle_series: CountSeries = field(default_factory=CountSeries)
    whisk_series: CountSeries = field(default_factory=CountSeries)
    available_series: CountSeries = field(default_factory=CountSeries)
    first_time: float = float("nan")
    last_time: float = float("nan")

    def add(self, sample: SlurmSample) -> None:
        """Fold one sample into the aggregates (and history, if kept)."""
        if self.whisk_series.count == 0:
            self.first_time = sample.time
        self.last_time = sample.time
        self.idle_series.add(len(sample.idle_nodes))
        self.whisk_series.add(len(sample.whisk_nodes))
        self.available_series.add(len(sample.available_nodes))
        if self.keep_history:
            self.samples.append(sample)

    def __len__(self) -> int:
        return self.whisk_series.count or len(self.samples)

    def _require_history(self, what: str) -> None:
        if not self.keep_history and not self.samples:
            raise RuntimeError(
                f"{what} needs the per-sample history, but this SamplerLog "
                "was built with keep_history=False; re-run with history "
                "enabled (slurm-sampler option history=true)"
            )

    def mean_gap(self) -> float:
        """Mean inter-sample gap, from the streaming first/last times.

        ``mean(diff(times))`` telescopes to ``(last - first) / (n-1)``,
        so the history-free form is algebraically identical (and within
        float rounding of the old re-scan).
        """
        n = len(self)
        if n < 2:
            return float("nan")
        if self.whisk_series.count:
            return (self.last_time - self.first_time) / (n - 1)
        # hand-built log (samples appended directly, bypassing add())
        times = np.array([s.time for s in self.samples])
        return float(np.diff(times).mean())

    def idle_counts(self) -> np.ndarray:
        """Per-sample idle-node counts, aligned with the poll sequence."""
        self._require_history("idle_counts()")
        return np.array([len(s.idle_nodes) for s in self.samples])

    def whisk_counts(self) -> np.ndarray:
        """Per-sample whisk-node counts, aligned with the poll sequence."""
        self._require_history("whisk_counts()")
        return np.array([len(s.whisk_nodes) for s in self.samples])

    def available_counts(self) -> np.ndarray:
        """Per-sample available-node counts, aligned with the poll sequence."""
        self._require_history("available_counts()")
        return np.array([len(s.available_nodes) for s in self.samples])


class SlurmSampler:
    """Runs the polling loop against a simulated controller."""

    def __init__(
        self,
        env: Environment,
        controller: SlurmController,
        rng: np.random.Generator,
        pause: float = 10.0,
        whisk_partition: str = "whisk",
        exclude: Optional[Set[str]] = None,
        keep_history: bool = True,
    ) -> None:
        self.env = env
        self.controller = controller
        self.latency = QueryLatencyModel(rng)
        self.pause = pause
        self.whisk_partition = whisk_partition
        self.exclude = exclude or set()
        self.log = SamplerLog(keep_history=keep_history)
        self._proc = env.process(self._run())

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("stop")

    def _run(self):
        env = self.env
        try:
            while True:
                # Send the request; the response arrives after the latency.
                yield env.timeout(self.latency.sample())
                snapshot = sinfo(
                    self.controller,
                    whisk_partition=self.whisk_partition,
                    exclude=self.exclude,
                )
                self.log.add(
                    SlurmSample(
                        time=env.now,
                        idle_nodes=snapshot.idle_nodes,
                        whisk_nodes=snapshot.whisk_nodes,
                    )
                )
                yield env.timeout(self.pause)
        except Interrupt:
            return
