"""OpenWhisk-level state accounting (Sec. IV-A perspective 1).

The paper combines the controller's second-accurate log with Slurm's job
log to classify every HPC-Whisk job's state at any second:

* **warm up** — pilot job running, invoker not yet registered;
* **healthy** — registered and accepting work;
* **irresponsive** — SIGTERM received (draining) or otherwise registered
  but no longer serving, while the job still exists.

Our pilot bodies record exactly these transitions in their
:class:`~repro.hpcwhisk.pilot.PilotTimeline`; this module turns a pile of
timelines into count series and the Table II/III "OW-level" rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import (
    PercentileSummary,
    percentile_summary,
    share_at_zero,
    time_weighted_counts,
)
from repro.hpcwhisk.pilot import PilotTimeline


@dataclass
class OWLevelStates:
    """Worker-state count series and summaries."""

    horizon: float
    step: float
    warmup_counts: np.ndarray
    healthy_counts: np.ndarray
    irresponsive_counts: np.ndarray

    @property
    def warmup(self) -> PercentileSummary:
        return percentile_summary(self.warmup_counts)

    @property
    def healthy(self) -> PercentileSummary:
        return percentile_summary(self.healthy_counts)

    @property
    def irresponsive(self) -> PercentileSummary:
        return percentile_summary(self.irresponsive_counts)

    @property
    def non_availability(self) -> float:
        """Share of time no healthy invoker was reachable."""
        return share_at_zero(self.healthy_counts)

    def longest_outage(self) -> float:
        """Longest continuous stretch with zero healthy invokers, seconds."""
        zero = self.healthy_counts == 0
        longest = current = 0
        for flag in zero:
            current = current + 1 if flag else 0
            longest = max(longest, current)
        return longest * self.step

    def total_outage(self) -> float:
        """Total time with zero healthy invokers, seconds."""
        return float(np.sum(self.healthy_counts == 0)) * self.step


def _clip(start: float, end: float, horizon: float) -> Tuple[float, float]:
    return max(0.0, start), min(end, horizon)


def ow_level_states(
    timelines: Sequence[PilotTimeline],
    horizon: float,
    step: float = 10.0,
) -> OWLevelStates:
    """Build the three state series from pilot timelines."""
    warmup: List[Tuple[float, float]] = []
    healthy: List[Tuple[float, float]] = []
    irresponsive: List[Tuple[float, float]] = []
    for timeline in timelines:
        job_start = timeline.job_started_at
        finished = timeline.finished_at if timeline.finished_at is not None else horizon
        if timeline.healthy_at is None:
            # Never registered: the whole job was warm-up.
            warmup.append(_clip(job_start, finished, horizon))
            continue
        warmup.append(_clip(job_start, timeline.healthy_at, horizon))
        serving_end = (
            timeline.sigterm_at if timeline.sigterm_at is not None else finished
        )
        healthy.append(_clip(timeline.healthy_at, serving_end, horizon))
        if timeline.sigterm_at is not None and finished > timeline.sigterm_at:
            irresponsive.append(_clip(timeline.sigterm_at, finished, horizon))
    return OWLevelStates(
        horizon=horizon,
        step=step,
        warmup_counts=time_weighted_counts(warmup, horizon, step),
        healthy_counts=time_weighted_counts(healthy, horizon, step),
        irresponsive_counts=time_weighted_counts(irresponsive, horizon, step),
    )


def ready_period_stats(timelines: Sequence[PilotTimeline]) -> dict:
    """Serving-period statistics (the paper: fib median ≈ 11 min,
    mean > 23 min, p75 ≈ 31 min; var median ≈ 7 min, mean > 14 min)."""
    durations = [
        t.healthy_duration for t in timelines if t.healthy_at is not None
    ]
    if not durations:
        return {"count": 0}
    array = np.asarray(durations)
    return {
        "count": int(array.size),
        "mean": float(array.mean()),
        "median": float(np.median(array)),
        "p75": float(np.percentile(array, 75)),
    }
