"""Terminal-renderable figures (no matplotlib in this environment).

Every figure in the paper is a time series or a CDF; these renderers give
the benchmark harness and the examples a way to *show* the regenerated
figures, not just their summary statistics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 80) -> str:
    """One-line block-character rendering of a series."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return ""
    if array.size > width:
        # Bucket means so the full range is represented.
        edges = np.linspace(0, array.size, width + 1, dtype=int)
        array = np.array([array[a:b].mean() if b > a else 0.0 for a, b in zip(edges, edges[1:])])
    low, high = float(array.min()), float(array.max())
    span = (high - low) or 1.0
    indices = ((array - low) / span * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[i] for i in indices)


def ascii_timeseries(
    times: Sequence[float],
    values: Sequence[float],
    title: str = "",
    width: int = 78,
    height: int = 12,
    time_unit: float = 3600.0,
    time_label: str = "h",
) -> str:
    """A multi-line scatter/step rendering of (times, values)."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0:
        return title + "\n(empty series)"
    v_max = max(float(values.max()), 1.0)
    t_min, t_max = float(times.min()), float(times.max())
    t_span = (t_max - t_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for t, v in zip(times, values):
        col = min(width - 1, int((t - t_min) / t_span * (width - 1)))
        row = min(height - 1, int(v / v_max * (height - 1)))
        grid[height - 1 - row][col] = "•"
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        label = v_max if index == 0 else (0 if index == height - 1 else None)
        prefix = f"{label:>6.0f} |" if label is not None else "       |"
        lines.append(prefix + "".join(row))
    lines.append("       +" + "-" * width)
    lines.append(
        f"        {t_min / time_unit:.1f}{time_label}"
        + " " * max(0, width - 16)
        + f"{t_max / time_unit:.1f}{time_label}"
    )
    return "\n".join(lines)


def ascii_cdf(
    values: Sequence[float],
    title: str = "",
    width: int = 70,
    height: int = 12,
    x_transform=None,
    x_label: str = "",
) -> str:
    """A CDF curve drawn with block characters."""
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        return title + "\n(empty)"
    transform = x_transform or (lambda x: x)
    xs = transform(array)
    x_min, x_max = float(xs.min()), float(xs.max())
    x_span = (x_max - x_min) or 1.0
    probabilities = np.arange(1, array.size + 1) / array.size
    grid = [[" "] * width for _ in range(height)]
    for x, p in zip(xs, probabilities):
        col = min(width - 1, int((x - x_min) / x_span * (width - 1)))
        row = min(height - 1, int(p * (height - 1)))
        grid[height - 1 - row][col] = "·"
    lines = []
    if title:
        lines.append(title)
    lines.append("  1.0 |" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append("      |" + "".join(row))
    lines.append("  0.0 |" + "".join(grid[-1]))
    lines.append("      +" + "-" * width)
    if x_label:
        lines.append(f"       {x_label}: [{array.min():.3g} .. {array.max():.3g}]")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 20,
    title: str = "",
    width: int = 50,
    value_format: str = "{:.0f}",
) -> str:
    """A horizontal-bar histogram."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return title + "\n(empty)"
    counts, edges = np.histogram(array, bins=bins)
    peak = counts.max() or 1
    lines = [title] if title else []
    for count, low, high in zip(counts, edges, edges[1:]):
        bar = "#" * int(count / peak * width)
        lines.append(
            f"  {value_format.format(low):>8}–{value_format.format(high):<8} "
            f"{bar} {count}"
        )
    return "\n".join(lines)
