"""The a-posteriori, clairvoyant coverage simulator (Tables I–III).

Given the per-node availability intervals of a measured (or generated)
period, greedily fill each interval with pilot jobs from a length set,
longest-first — the paper's Table I method: *"The simulator greedily fills
each period of idleness with the jobs, starting from the longest ones that
fit"* — charging a flat 20-second warm-up per job.

This is an upper bound on what the live system can achieve: the simulator
knows every interval's length in advance, pays no scheduling latency, and
never gets preempted mid-job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


from repro.analysis.metrics import percentile_summary, PercentileSummary, share_at_zero, time_weighted_counts
from repro.hpcwhisk.lengths import JobLengthSet
from repro.workloads.distributions import WarmupModel


def greedy_fill_window(window: float, lengths: Sequence[float]) -> List[float]:
    """Longest-first greedy packing of *window* seconds with job lengths.

    E.g. a 21-minute window packs A1 as [14 min, 6 min], leaving 1 minute
    unused (the paper's own example).
    """
    remaining = window
    packed: List[float] = []
    for length in sorted(lengths, reverse=True):
        while remaining >= length:
            packed.append(length)
            remaining -= length
    return packed


@dataclass
class CoverageResult:
    """Everything the paper reports about one coverage simulation."""

    #: total pilot jobs placed
    num_jobs: int
    #: total availability surface, node-seconds
    total_surface: float
    #: node-seconds spent warming up
    warmup_surface: float
    #: node-seconds of ready (serving) workers
    ready_surface: float
    #: node-seconds no job could use (residues < shortest job)
    unused_surface: float
    #: ready-worker count percentiles over time
    ready_workers: PercentileSummary
    #: warming-worker count percentiles over time
    warming_workers: PercentileSummary
    #: share of time with zero ready workers
    non_availability: float
    #: the packed jobs as (node, start, end) for downstream analyses
    jobs: List[Tuple[str, float, float]] = field(default_factory=list)

    @property
    def warmup_share(self) -> float:
        return self.warmup_surface / self.total_surface if self.total_surface else 0.0

    @property
    def ready_share(self) -> float:
        return self.ready_surface / self.total_surface if self.total_surface else 0.0

    @property
    def unused_share(self) -> float:
        return self.unused_surface / self.total_surface if self.total_surface else 0.0

    @property
    def used_share(self) -> float:
        """warm-up + ready: the paper's headline coverage (92% / 84%)."""
        return self.warmup_share + self.ready_share


class CoverageSimulator:
    """Runs clairvoyant packing over per-node availability intervals."""

    def __init__(
        self,
        warmup: float = WarmupModel.FLAT_SIMULATION_COST,
        step: float = 10.0,
    ) -> None:
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.warmup = warmup
        self.step = step

    def run(
        self,
        intervals: Dict[str, List[Tuple[float, float]]],
        length_set: JobLengthSet,
        horizon: float | None = None,
    ) -> CoverageResult:
        """Pack every node's intervals with the length set's jobs."""
        lengths = length_set.seconds
        total = warm = ready = 0.0
        jobs: List[Tuple[str, float, float]] = []
        ready_intervals: List[Tuple[float, float]] = []
        warm_intervals: List[Tuple[float, float]] = []
        max_end = 0.0
        for node, node_intervals in intervals.items():
            for start, end in node_intervals:
                window = end - start
                if window <= 0:
                    continue
                total += window
                max_end = max(max_end, end)
                cursor = start
                for job_length in greedy_fill_window(window, lengths):
                    job_start = cursor
                    job_end = cursor + job_length
                    cursor = job_end
                    jobs.append((node, job_start, job_end))
                    charged_warmup = min(self.warmup, job_length)
                    warm += charged_warmup
                    ready += job_length - charged_warmup
                    warm_intervals.append((job_start, job_start + charged_warmup))
                    ready_intervals.append((job_start + charged_warmup, job_end))
        span = horizon if horizon is not None else max_end
        ready_counts = time_weighted_counts(ready_intervals, span, self.step)
        warm_counts = time_weighted_counts(warm_intervals, span, self.step)
        return CoverageResult(
            num_jobs=len(jobs),
            total_surface=total,
            warmup_surface=warm,
            ready_surface=ready,
            unused_surface=total - warm - ready,
            ready_workers=percentile_summary(ready_counts),
            warming_workers=percentile_summary(warm_counts),
            non_availability=share_at_zero(ready_counts),
            jobs=jobs,
        )
