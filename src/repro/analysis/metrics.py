"""Shared statistics toolbox for all analyses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


def cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative probabilities)."""
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        return array, array
    probabilities = np.arange(1, array.size + 1) / array.size
    return array, probabilities


@dataclass(frozen=True)
class PercentileSummary:
    """The paper's standard "25-50-75p avg" row."""

    p25: float
    p50: float
    p75: float
    avg: float

    def row(self) -> str:
        return f"{self.p25:.0f}-{self.p50:.0f}-{self.p75:.0f}  {self.avg:.2f}"


def percentile_summary(values: Sequence[float]) -> PercentileSummary:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return PercentileSummary(float("nan"), float("nan"), float("nan"), float("nan"))
    return PercentileSummary(
        p25=float(np.percentile(array, 25)),
        p50=float(np.percentile(array, 50)),
        p75=float(np.percentile(array, 75)),
        avg=float(array.mean()),
    )


def merge_intervals(intervals: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping intervals."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def interval_total(intervals: Iterable[Tuple[float, float]]) -> float:
    """Total length of a union of intervals."""
    return sum(end - start for start, end in merge_intervals(intervals))


def node_surface(intervals_by_node: Dict[str, List[Tuple[float, float]]]) -> float:
    """Total node-seconds across a per-node interval map.

    Merging happens *within* each node only — intervals of different nodes
    legitimately overlap in time and must all count.  (Flattening a
    multi-node map into :func:`interval_total` would union them away.)
    """
    return sum(interval_total(ivs) for ivs in intervals_by_node.values())


def interval_coverage(
    base: Iterable[Tuple[float, float]],
    cover: Iterable[Tuple[float, float]],
) -> float:
    """Fraction of the *base* surface covered by *cover* (both unions)."""
    base_merged = merge_intervals(base)
    cover_merged = merge_intervals(cover)
    base_total = sum(e - s for s, e in base_merged)
    if base_total == 0:
        return 0.0
    covered = 0.0
    j = 0
    for b_start, b_end in base_merged:
        while j < len(cover_merged) and cover_merged[j][1] <= b_start:
            j += 1
        k = j
        while k < len(cover_merged) and cover_merged[k][0] < b_end:
            covered += max(
                0.0, min(cover_merged[k][1], b_end) - max(cover_merged[k][0], b_start)
            )
            k += 1
    return covered / base_total


def time_weighted_counts(
    intervals: Iterable[Tuple[float, float]],
    horizon: float,
    step: float = 10.0,
) -> np.ndarray:
    """Count of concurrently active intervals, sampled every *step* s."""
    events: List[Tuple[float, int]] = []
    for start, end in intervals:
        if end <= start:
            continue
        events.append((start, 1))
        events.append((end, -1))
    events.sort()
    times = np.arange(0.0, horizon, step)
    counts = np.zeros(len(times), dtype=int)
    level = 0
    j = 0
    for i, t in enumerate(times):
        while j < len(events) and events[j][0] <= t:
            level += events[j][1]
            j += 1
        counts[i] = level
    return counts


def share_at_zero(counts: np.ndarray) -> float:
    """Fraction of samples with a zero count (non-availability share)."""
    if counts.size == 0:
        return 0.0
    return float(np.mean(counts == 0))


def per_minute_bins(
    times: Sequence[float], horizon: float
) -> np.ndarray:
    """Histogram of event times into whole-minute bins over [0, horizon)."""
    bins = int(np.ceil(horizon / 60.0))
    counts = np.zeros(bins, dtype=int)
    for t in times:
        if 0 <= t < horizon:
            counts[int(t // 60.0)] += 1
    return counts
