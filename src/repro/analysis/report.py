"""Text renderers matching the paper's table layouts."""

from __future__ import annotations

from typing import Dict, Mapping

from repro.analysis.coverage import CoverageResult
from repro.analysis.metrics import PercentileSummary


def _pct(x: float) -> str:
    return f"{100.0 * x:5.2f}%"


def render_table1(results: Mapping[str, tuple]) -> str:
    """Table I: coverage simulation per job-length set.

    ``results`` maps set name → (JobLengthSet, CoverageResult).
    """
    lines = [
        "TABLE I: simulated coverage of idleness periods "
        "(20 s warm-up per job, max job length 120 min)",
        f"{'Set':<4} {'Job lengths [min]':<28} {'# jobs':>7} "
        f"{'warm up':>8} {'ready':>8} {'not used':>9}  "
        f"{'25-50-75%ile':>13} {'Avg':>6} {'Non-avail':>9}",
    ]
    for name, (length_set, cov) in results.items():
        lengths = ", ".join(str(m) for m in length_set.minutes)
        if len(lengths) > 26:
            lengths = lengths[:23] + "..."
        w = cov.ready_workers
        lines.append(
            f"{name:<4} {lengths:<28} {cov.num_jobs:>7d} "
            f"{_pct(cov.warmup_share):>8} {_pct(cov.ready_share):>8} "
            f"{_pct(cov.unused_share):>9}  "
            f"{w.p25:>3.0f}-{w.p50:.0f}-{w.p75:.0f}{'':>4} {w.avg:>6.2f} "
            f"{_pct(cov.non_availability):>9}"
        )
    return "\n".join(lines)


def render_table23(
    title: str,
    simulation: CoverageResult,
    slurm_workers: PercentileSummary,
    slurm_used_share: float,
    ow_warmup: PercentileSummary,
    ow_healthy: PercentileSummary,
    ow_irresponsive: PercentileSummary,
) -> str:
    """Tables II/III: three-perspective comparison for one experiment day."""
    lines = [
        title,
        f"{'Perspective':<12} {'state':<10} {'25-50-75p':>12} {'avg':>7}   "
        f"{'used':>7} {'not used':>9}",
    ]

    def row(perspective: str, state: str, s: PercentileSummary, used="", not_used=""):
        lines.append(
            f"{perspective:<12} {state:<10} "
            f"{s.p25:>3.0f}-{s.p50:.0f}-{s.p75:.0f}{'':>3} {s.avg:>7.2f}   "
            f"{used:>7} {not_used:>9}"
        )

    row(
        "Simulation",
        "warm up",
        simulation.warming_workers,
        _pct(simulation.warmup_share),
        _pct(simulation.unused_share),
    )
    row("", "ready", simulation.ready_workers, _pct(simulation.ready_share), "")
    row(
        "Slurm-level",
        "all states",
        slurm_workers,
        _pct(slurm_used_share),
        _pct(1.0 - slurm_used_share),
    )
    row("OW-level", "warm up", ow_warmup)
    row("", "healthy", ow_healthy)
    row("", "irresp.", ow_irresponsive)
    return "\n".join(lines)


def render_kv(title: str, data: Dict[str, object]) -> str:
    """Simple aligned key/value block for ad-hoc reports."""
    width = max(len(k) for k in data) if data else 0
    lines = [title]
    for key, value in data.items():
        if isinstance(value, float):
            value = f"{value:.4g}"
        lines.append(f"  {key:<{width}} : {value}")
    return "\n".join(lines)


def render_sweep(result: "SweepResult") -> str:  # noqa: F821 - duck-typed
    """Human-readable table of a sweep aggregate.

    One block per grid cell: the cell's parameters, then each metric's
    mean ± sample stdev (and 95% CI when more than one seed ran).
    ``result`` is a :class:`repro.scenarios.sweep.SweepResult`.
    """
    spec = result.spec
    header = (
        f"sweep {spec.scenario} @ {spec.scale} — "
        f"{len(result.cells)} cell(s), {spec.seeds} seed(s) each "
        f"(base seed {result.base_seed})"
    )
    if spec.fixed:
        header += "  fixed: " + ", ".join(
            f"{k}={v}" for k, v in spec.fixed.items()
        )
    lines = [header]
    for cell in result.cells:
        params = ", ".join(f"{k}={v}" for k, v in cell.params.items()) or "(defaults)"
        lines += ["", f"  {params}   seeds {cell.run_seeds}"]
        if not cell.metrics:
            lines.append("    (no runs)")
            continue
        width = max(len(name) for name in cell.metrics)
        for name in sorted(cell.metrics):
            agg = cell.metrics[name]
            line = f"    {name:<{width}} : {agg['mean']:.6g}"
            if agg["n"] > 1:
                line += f" ± {agg['stdev']:.3g} (95% CI ± {agg['ci95']:.3g})"
            lines.append(line)
    return "\n".join(lines)
