"""Reconstructing per-node intervals from sampled logs.

The Slurm-level perspective only sees ~10-second snapshots; a node is
taken to hold a state for the whole gap between a sample that shows it and
the next sample.  This is exactly the granularity the paper's analyses
work at — idle periods shorter than the sampling gap are invisible, which
is fine: they are unusable by 2-minute backfill slots anyway.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.sampler import SlurmSample


def samples_to_intervals(
    samples: Sequence[SlurmSample],
    selector: Callable[[SlurmSample], Sequence[str]],
    end_time: float | None = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-node intervals during which *selector* includes the node.

    ``selector`` picks the node list of interest from each sample
    (``lambda s: s.idle_nodes``, ``s.whisk_nodes`` or
    ``s.available_nodes``).  Consecutive samples containing the node are
    merged into one interval ending at the first sample without it (or at
    *end_time* / the last sample).
    """
    intervals: Dict[str, List[Tuple[float, float]]] = {}
    open_since: Dict[str, float] = {}
    last_time = None
    for sample in samples:
        selected = selector(sample)
        current = set(selected)
        for node in list(open_since):
            if node not in current:
                start = open_since.pop(node)
                intervals.setdefault(node, []).append((start, sample.time))
        # Iterate the sample's own (deterministic) node order, not the
        # set: set order hangs on PYTHONHASHSEED, and the resulting dict
        # insertion order decides float summation order downstream —
        # enough to shift coverage shares by 1 ulp between processes.
        for node in selected:
            if node not in open_since:
                open_since[node] = sample.time
        last_time = sample.time
    close_at = end_time if end_time is not None else last_time
    if close_at is not None:
        for node, start in open_since.items():
            if close_at > start:
                intervals.setdefault(node, []).append((start, close_at))
    return intervals


def intervals_by_node(
    samples: Sequence[SlurmSample], kind: str = "available", end_time: float | None = None
) -> Dict[str, List[Tuple[float, float]]]:
    """Convenience wrapper: kind in {"idle", "whisk", "available"}."""
    selectors = {
        "idle": lambda s: s.idle_nodes,
        "whisk": lambda s: s.whisk_nodes,
        "available": lambda s: s.available_nodes,
    }
    try:
        selector = selectors[kind]
    except KeyError:
        raise ValueError(f"unknown interval kind {kind!r}") from None
    return samples_to_intervals(samples, selector, end_time=end_time)


def flatten(intervals: Dict[str, List[Tuple[float, float]]]) -> List[Tuple[float, float]]:
    """All nodes' intervals in one list (for count series / totals)."""
    out: List[Tuple[float, float]] = []
    for node_intervals in intervals.values():
        out.extend(node_intervals)
    return out
