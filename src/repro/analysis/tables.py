"""One tabular writer for every table the repo emits.

``cli.py`` (per-run metric CSV), ``supply/matrix.py`` (ranked matrix
CSV), ``scenarios/sweep.py`` (per-cell aggregate CSV), and ``repro
query`` / ``repro report`` all print or persist rows-with-columns; this
module is the single implementation they share.

Cells are written exactly as given — callers that need byte-stable
output (the committed CSV shapes asserted by tests) pre-format floats
with ``repr`` themselves, everything else passes raw values through
:mod:`csv`'s standard quoting.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from numbers import Number
from typing import Any, List, Optional, Sequence


@dataclass
class Table:
    """An ordered set of columns plus rows of cells."""

    columns: List[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    title: Optional[str] = None

    @classmethod
    def from_cursor(cls, cursor, title: Optional[str] = None) -> "Table":
        """Materialize a DB-API cursor (column names from description)."""
        columns = [desc[0] for desc in cursor.description or ()]
        return cls(columns=columns, rows=[list(row) for row in cursor], title=title)

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Header + one line per row, ``\\n`` terminated (csv quoting)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def to_json(self, indent: int = 2) -> str:
        """A JSON list of one object per row, column order preserved."""
        payload = [dict(zip(self.columns, row)) for row in self.rows]
        return json.dumps(payload, indent=indent, default=str)

    def render(self) -> str:
        """Aligned text table: numbers right-aligned, text left-aligned."""
        cells = [[_format_cell(value) for value in row] for row in self.rows]
        widths = [len(name) for name in self.columns]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        numeric = [
            all(
                isinstance(row[index], Number) or row[index] is None
                for row in self.rows
            )
            for index in range(len(self.columns))
        ]

        def line(values: Sequence[str]) -> str:
            parts = []
            for index, value in enumerate(values):
                if numeric[index]:
                    parts.append(f"{value:>{widths[index]}}")
                else:
                    parts.append(f"{value:<{widths[index]}}")
            return "  ".join(parts).rstrip()

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(line(self.columns))
        lines.append(line(["-" * width for width in widths]))
        if not cells:
            lines.append("(no rows)")
        else:
            lines.extend(line(row) for row in cells)
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
