"""repro — a reproduction of HPC-Whisk (SC 2022).

*Using Unused: Non-Invasive Dynamic FaaS Infrastructure with HPC-Whisk*
builds a Function-as-a-Service layer on the transient idle nodes of a
production HPC cluster.  This package reimplements the full stack as a
discrete-event simulation plus real compute kernels:

``repro.sim``
    A from-scratch generator-based discrete-event simulation kernel.
``repro.cluster``
    A Slurm-like workload manager: priority tiers, preemption with a grace
    period, EASY backfill on 2-minute slots, variable-length jobs.
``repro.faas``
    An OpenWhisk-like FaaS middleware: controller, message broker with
    per-invoker topics plus a global fast lane, invokers, container pools.
``repro.hpcwhisk``
    The paper's contribution: pilot jobs and the fib/var job managers that
    keep Slurm supplied with preemptible FaaS workers.
``repro.workloads``
    Workload generators calibrated to the paper's published statistics, the
    SeBS compute kernels (bfs/mst/pagerank) and an AWS Lambda model.
``repro.analysis``
    Samplers, logs, the a-posteriori clairvoyant coverage simulator, and
    table/figure renderers for every experiment in the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
