"""Legacy setup shim.

The sandboxed environment has setuptools but no ``wheel`` package, so PEP
660 editable installs (``pip install -e .``) cannot build the editable
wheel.  ``python setup.py develop`` provides the equivalent editable
install through setuptools' legacy path.  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
