#!/usr/bin/env python3
"""Quickstart: the paper's Fig 3 scenario in ~40 lines of API.

Five nodes, four HPC jobs, and a supply of short pilot jobs that turn the
schedule's idle gaps into a working FaaS layer.  Run it:

    python examples/quickstart.py
"""

from repro.cluster import JobSpec, SlurmConfig
from repro.faas import FunctionDef
from repro.hpcwhisk import HPCWhiskConfig, SupplyModel, build_system
from repro.hpcwhisk.lengths import JobLengthSet

MINUTE = 60.0

# 1. Assemble a complete system: a 5-node Slurm-like cluster, an
#    OpenWhisk-like controller, and a fib-model pilot-job manager keeping
#    {2,4,6,10}-minute preemptible jobs queued.
system = build_system(
    HPCWhiskConfig(
        supply_model=SupplyModel.FIB,
        length_set=JobLengthSet("quickstart", (2, 4, 6, 10)),
        queue_per_length=5,
        replenish_interval=5.0,
    ),
    SlurmConfig(num_nodes=5),
    seed=7,
)

# 2. Submit the prime HPC workload of Fig 3 (pinned, minimal makespan).
for name, nodes, start, end in [
    ("j1", ("n0000", "n0001", "n0002"), 0, 5),
    ("j2", ("n0003",), 0, 13),
    ("j3", ("n0000", "n0001"), 5, 12),
    ("j4", ("n0000", "n0001", "n0002", "n0004"), 12, 20),
]:
    system.slurm.submit(
        JobSpec(
            name=name,
            num_nodes=len(nodes),
            time_limit=(end - start) * MINUTE,
            actual_runtime=(end - start) * MINUTE,
            partition="main",
            required_nodes=nodes,
            begin_time=start * MINUTE,
        )
    )

# 3. Deploy a function and call it from a client while the cluster runs.
system.controller.deploy(FunctionDef(name="hello", duration=0.010))

responses = []


def client(env):
    yield env.timeout(3 * MINUTE)  # give a pilot time to boot
    for _ in range(5):
        result = yield from system.client.invoke("hello")
        responses.append(result)
        yield env.timeout(30.0)


system.env.process(client(system.env))

# 4. Run 20 simulated minutes and report.
system.run(until=20 * MINUTE)

print("=== quickstart: Fig 3 scenario ===")
print(f"pilot jobs started : {len(system.pilot_timelines)}")
for timeline in system.pilot_timelines:
    served = timeline.healthy_duration / MINUTE
    print(
        f"  {timeline.invoker_id} on {timeline.node}: healthy {served:.1f} min,"
        f" ended by {timeline.end_reason or 'horizon'}"
    )
print(f"function calls     : {len(responses)}")
for result in responses:
    print(f"  {result.function}: {result.status.value} in {result.response_time*1000:.0f} ms")
ok = sum(1 for r in responses if r.ok)
print(f"=> {ok}/{len(responses)} invocations served by harvested idle nodes")
