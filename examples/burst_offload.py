#!/usr/bin/env python3
"""Algorithm 1 in action: surviving full-cluster-utilization windows.

The cluster's idle supply disappears entirely for stretches of time
(10.11% of the analysed week).  A naive client sees hard 503s; the paper's
Alg. 1 wrapper off-loads to a commercial cloud for 60 s after each 503 and
keeps the application's success rate at 100%.

    python examples/burst_offload.py
"""

from repro.cluster import SlurmConfig
from repro.faas import ActivationStatus, FunctionDef
from repro.hpcwhisk import HPCWhiskConfig, SupplyModel, build_system
from repro.workloads.gatling import GatlingClient
from repro.workloads.hpc_trace import trace_to_prime_jobs
from repro.workloads.idleness import IdlenessTraceGenerator

HORIZON = 2 * 3600.0

system = build_system(HPCWhiskConfig(supply_model=SupplyModel.FIB),
                      SlurmConfig(num_nodes=32), seed=13)

# An idleness regime WITH pronounced outages (the interesting case here).
trace = IdlenessTraceGenerator(
    system.streams.stream("trace"),
    num_nodes=32,
    outage_share=0.15,   # exaggerated outages to show the mechanism
    length_scale=2.0,
).generate(HORIZON)
trace_to_prime_jobs(trace, system.streams.stream("lead")).submit_all(
    system.env, system.slurm
)

for i in range(20):
    system.controller.deploy(FunctionDef(name=f"api-{i:02d}", duration=0.010))
functions = [f"api-{i:02d}" for i in range(20)]

# Two identical load clients: one naive, one wrapped by Alg. 1.
naive = GatlingClient(
    system.env, system.client, functions,
    rate_per_second=2.0, rng=system.streams.stream("naive"),
)
wrapped = GatlingClient(
    system.env, system.wrapped_client, functions,
    rate_per_second=2.0, rng=system.streams.stream("wrapped"),
)
naive.start(HORIZON)
wrapped.start(HORIZON)

system.run(until=HORIZON + 120)

print("=== Alg. 1 commercial fallback under supply outages ===")
for name, report in (("naive client", naive.report), ("Alg. 1 wrapper", wrapped.report)):
    rejected = report.count(ActivationStatus.UNAVAILABLE)
    success = report.count(ActivationStatus.SUCCESS)
    print(
        f"{name:>14}: {report.total} requests, {success} ok, "
        f"{rejected} rejected with 503 "
        f"({100 * rejected / max(report.total, 1):.1f}%)"
    )
commercial = sum(1 for o in wrapped.report.outcomes if o.backend == "commercial")
print(f"\nwrapper routed {commercial} calls "
      f"({100 * commercial / max(len(wrapped.report), 1):.1f}%) to the commercial cloud")
print(f"wrapper stats: {system.wrapped_client.stats}")
assert wrapped.report.count(ActivationStatus.UNAVAILABLE) == 0, "Alg. 1 must absorb all 503s"
print("=> the wrapped client never surfaced a 503 to the application")
