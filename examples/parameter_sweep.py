#!/usr/bin/env python3
"""Sweep the experiment day across supply models and cluster sizes.

The paper reports two single 24-hour runs (Tables II/III).  With the
scenario layer the same stack fans out across a parameter grid with seed
replication, so every headline number gets an error bar:

    python examples/parameter_sweep.py [--seeds N] [--jobs N]

Equivalent one-liner:

    python -m repro sweep day --grid model=fib,var nodes=64,128 \
        --seeds 3 -j 4 --scale smoke --table
"""

import argparse

from repro.analysis.report import render_sweep
from repro.scenarios import SweepExecutor, SweepSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=3, help="replications per cell")
    parser.add_argument("--jobs", type=int, default=4, help="worker processes")
    parser.add_argument("--scale", default="smoke", choices=("smoke", "quick", "full"))
    args = parser.parse_args()

    spec = SweepSpec(
        scenario="day",
        grid={"model": ["fib", "var"], "nodes": [64, 128]},
        seeds=args.seeds,
        scale=args.scale,
        jobs=args.jobs,
    )
    result = SweepExecutor().run(spec)
    print(render_sweep(result))
    print()
    fib = next(c for c in result.cells if c.params == {"model": "fib", "nodes": 128})
    var = next(c for c in result.cells if c.params == {"model": "var", "nodes": 128})
    print("headline (128 nodes): coverage "
          f"fib {fib.metrics['coverage']['mean']:.2%} ± {fib.metrics['coverage']['stdev']:.2%} "
          f"vs var {var.metrics['coverage']['mean']:.2%} ± {var.metrics['coverage']['stdev']:.2%}")


if __name__ == "__main__":
    main()
