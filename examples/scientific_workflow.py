#!/usr/bin/env python3
"""A scientific FaaS workload on harvested idle nodes (future work, Sec. VII).

The paper suggests benchmarking HPC-Whisk with "a representative scientific
FaaS workload".  This example runs a map-reduce-style parameter study — the
bag-of-tasks pattern HyperFlow/PyWren-class systems execute — through the
Alg. 1-wrapped client: 3 stages × many tasks, with stage barriers.

    python examples/scientific_workflow.py
"""

from repro.cluster import SlurmConfig
from repro.faas import FunctionDef
from repro.hpcwhisk import HPCWhiskConfig, SupplyModel, build_system
from repro.workloads.hpc_trace import trace_to_prime_jobs
from repro.workloads.idleness import IdlenessTraceGenerator

HORIZON = 3 * 3600.0

system = build_system(HPCWhiskConfig(supply_model=SupplyModel.FIB),
                      SlurmConfig(num_nodes=32), seed=21)
env = system.env

trace = IdlenessTraceGenerator(
    system.streams.stream("trace"), num_nodes=32, min_intensity=5.0, outage_share=0.01
).generate(HORIZON)
trace_to_prime_jobs(trace, system.streams.stream("lead")).submit_all(env, system.slurm)

# The workflow's three stages as deployed functions.
system.controller.deploy(FunctionDef(name="preprocess", duration=1.2))
system.controller.deploy(FunctionDef(name="simulate", duration=4.0))
system.controller.deploy(FunctionDef(name="reduce", duration=2.5))

TASKS_PER_STAGE = {"preprocess": 40, "simulate": 120, "reduce": 8}
stage_log = []


def run_task(env, name, attempts=4, backoff=5.0):
    """One task with retries — wide fan-outs overload the few harvested
    invokers ("invoker overloaded" failures), so a workflow engine retries
    with backoff, exactly like real bag-of-tasks runners do."""
    tries = 0
    while True:
        tries += 1
        result = yield from system.wrapped_client.invoke(name)
        if result.ok or tries >= attempts:
            return result, tries
        yield env.timeout(backoff * tries)


def run_stage(env, name, count):
    """Fan out *count* tasks, wait for all (a stage barrier)."""
    started = env.now
    procs = [env.process(run_task(env, name)) for _ in range(count)]
    results = []
    for proc in procs:
        results.append((yield proc))
    ok = sum(1 for r, _t in results if r.ok)
    retried = sum(1 for _r, t in results if t > 1)
    commercial = sum(1 for r, _t in results if r.backend == "commercial")
    stage_log.append(
        dict(stage=name, tasks=count, ok=ok, commercial=commercial,
             retried=retried, makespan=env.now - started)
    )


def workflow(env):
    yield env.timeout(180.0)  # let the first pilots warm up
    t0 = env.now
    for stage, count in TASKS_PER_STAGE.items():
        yield from run_stage(env, stage, count)
    stage_log.append(dict(stage="TOTAL", tasks=sum(TASKS_PER_STAGE.values()),
                          ok=sum(s["ok"] for s in stage_log),
                          commercial=sum(s["commercial"] for s in stage_log),
                          retried=sum(s["retried"] for s in stage_log),
                          makespan=env.now - t0))


env.process(workflow(env))
system.run(until=HORIZON)

print("=== scientific workflow over HPC-Whisk (bag-of-tasks, 3 stages) ===")
print(f"{'stage':<12} {'tasks':>6} {'ok':>5} {'retried':>8} {'via cloud':>10} {'makespan':>10}")
for entry in stage_log:
    print(f"{entry['stage']:<12} {entry['tasks']:>6} {entry['ok']:>5} "
          f"{entry['retried']:>8} {entry['commercial']:>10} {entry['makespan']:>9.1f}s")
harvested = stage_log[-1]["tasks"] - stage_log[-1]["commercial"]
print(f"\n=> {harvested}/{stage_log[-1]['tasks']} tasks computed on otherwise-idle "
      "HPC nodes; the rest absorbed by the Alg. 1 commercial fallback")
assert stage_log[-1]["ok"] == stage_log[-1]["tasks"], "workflow must fully succeed"
