#!/usr/bin/env python3
"""A production experiment day, condensed (Table II / Fig 5 pipeline).

Replays a calibrated idleness trace as a pinned prime workload on a
simulated cluster, runs the fib pilot-job manager against it, fires a
constant-rate Gatling client at 100 deployed functions, and prints the
paper's three-perspective comparison.

    python examples/production_day.py [--hours N] [--model fib|var]
"""

import argparse

from repro.experiments.day import DayConfig, run_day
from repro.hpcwhisk.config import SupplyModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=3.0, help="experiment length")
    parser.add_argument("--model", choices=("fib", "var"), default="fib")
    parser.add_argument("--nodes", type=int, default=128, help="cluster size")
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args()

    model = SupplyModel.FIB if args.model == "fib" else SupplyModel.VAR
    seed = args.seed if args.seed is not None else (317 if model is SupplyModel.FIB else 321)
    config = DayConfig(
        model=model,
        seed=seed,
        horizon=args.hours * 3600.0,
        num_nodes=args.nodes,
    )
    print(f"running a {args.hours:.1f} h {args.model} day on {args.nodes} nodes "
          f"(seed {seed}) ...")
    result = run_day(config)
    print()
    print(result.render())
    print()
    print("paper anchors — fib: 90% live / 92% sim coverage, 95.29% accepted, "
          "865 ms median; var: 68% / 84%, 78.28%, 1227 ms")


if __name__ == "__main__":
    main()
