#!/usr/bin/env python3
"""A production experiment day, condensed (Table II / Fig 5 pipeline).

Replays a calibrated idleness trace as a pinned prime workload on a
simulated cluster, runs the chosen pilot-job manager against it, fires a
constant-rate Gatling client at 100 deployed functions, and prints the
paper's three-perspective comparison — all through the scenario
registry, exactly like ``python -m repro day``:

    python examples/production_day.py [--hours N] [--model fib|var]
"""

import argparse

from repro.scenarios import REGISTRY, load_builtin


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=3.0, help="experiment length")
    parser.add_argument("--model", choices=("fib", "var"), default="fib")
    parser.add_argument("--nodes", type=int, default=128, help="cluster size")
    parser.add_argument("--seed", type=int, default=None,
                        help="root seed (default: the day's per-model seed)")
    args = parser.parse_args()

    load_builtin()
    overrides = {"model": args.model, "hours": args.hours, "nodes": args.nodes}
    if args.seed is not None:
        overrides["seed"] = args.seed
    spec = REGISTRY.build_spec("day", overrides)
    print(f"running a {args.hours:.1f} h {args.model} day on {args.nodes} nodes "
          f"(seed {spec.seed}) ...")
    result = REGISTRY.get("day").runner(spec)
    print()
    print(result.text)
    print()
    print(f"flat metrics: coverage {result.metrics['coverage']:.2%}, "
          f"accepted {result.metrics.get('accepted_share', float('nan')):.2%}")
    print("paper anchors — fib: 90% live / 92% sim coverage, 95.29% accepted, "
          "865 ms median; var: 68% / 84%, 78.28%, 1227 ms")


if __name__ == "__main__":
    main()
