"""Compose a novel scenario with the ``repro.api`` stack builder.

No experiment module, no registry entry: declare the composition, run
it, read the merged probe metrics.  The same composition expressed as
YAML lives in ``examples/configs/`` and runs via
``python -m repro run --config ...``.

Run:  PYTHONPATH=src python examples/compose_stack.py
"""

from repro.api import ClusterSpec, ProbeSpec, Stack, SupplySpec, WorkloadSpec

stack = Stack(
    cluster=ClusterSpec(nodes=64),
    supply=SupplySpec("var", var_queue_depth=50),
    workloads=(
        WorkloadSpec("idleness-trace", min_intensity=6.0, outage_share=0.01),
        WorkloadSpec("gatling", qps=5.0, functions=50),
    ),
    probes=(
        ProbeSpec("slurm-sampler"),
        ProbeSpec("coverage", length_set="C2"),
        ProbeSpec("ow-log"),
        ProbeSpec("gatling-report"),
    ),
    seed=42,
    horizon=1800.0,
    name="var-demo",
)

report = stack.run()
print(report.render())
print()
print("The same run as JSON (sweep/persistence-ready):")
print(report.to_json())
