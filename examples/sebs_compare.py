#!/usr/bin/env python3
"""Fig 7 reproduction: SeBS compute kernels, this machine vs AWS Lambda.

Runs real bfs / mst / pagerank implementations on seeded synthetic graphs
("Prometheus node" side) and compares against the calibrated Lambda
performance model across several memory configurations.

    python examples/sebs_compare.py [--invocations N] [--graph-size N]
"""

import argparse

import numpy as np

from repro.experiments.fig7 import run_fig7
from repro.workloads.lambda_model import LambdaPerformanceModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--invocations", type=int, default=30)
    parser.add_argument("--graph-size", type=int, default=20000)
    args = parser.parse_args()

    print(f"timing {args.invocations} warm invocations per function "
          f"(graph size {args.graph_size}) ...\n")
    result = run_fig7(
        seed=2022, invocations=args.invocations, graph_size=args.graph_size
    )
    print(result.render())

    print("\nLambda memory scaling (model):")
    model = LambdaPerformanceModel(jitter_sigma=0.0)
    rng = np.random.default_rng(0)
    base = result.rows[0].prometheus_median_s
    for memory in (512, 1024, 1792, 2048):
        t = model.execution_time(base, memory, rng)
        print(f"  {memory:>5} MB: bfs would take {t * 1000:7.1f} ms "
              f"({t / base:4.2f}x the node)")
    print("\npaper anchor: the HPC node is ~15% faster than Lambda @ 2 GB "
          "on all three functions")


if __name__ == "__main__":
    main()
